//! Stratified synthetic-machine corpus.
//!
//! The nine MCNC signatures in [`crate::benchmarks`] cover the paper's
//! tables but not the scenario space the degradation ladder exists for.
//! This module stratifies machine space into named **tiers** — each a
//! seeded, reproducible parameter grid aimed at one flow regime (series
//! cascades, heavy column compaction, always-on machines where clock
//! control is a pure loss, wide-input machines, FF fallbacks, …) — and
//! gives every corpus item a **self-describing name** that round-trips
//! through [`encode_spec`]/[`decode_spec`]. Process workers and the
//! mapping daemon reconstruct the exact machine from the item name
//! alone, so the corpus needs no side-channel files on the wire.
//!
//! Tier definitions here are pure *machine-space*: which states/inputs/
//! knob ranges a tier draws from. How a tier is pushed through the flow
//! (device choice, mapping options, budgets) is the bench crate's
//! business (`paper_bench::corpus`), keeping this crate free of flow
//! dependencies.

use crate::generate::StgSpec;
use xrand::{splitmix64, SmallRng};

/// One named stratum of machine space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierDef {
    /// Stable tier name (no `.` — it delimits the item-name codec).
    pub name: &'static str,
    /// What flow regime the tier is aimed at.
    pub summary: &'static str,
}

/// The committed corpus tiers, in reporting order.
pub const TIERS: [TierDef; 9] = [
    TierDef {
        name: "nominal",
        summary: "small well-behaved machines; direct mapping, no downgrades expected",
    },
    TierDef {
        name: "series-cascade",
        summary: "huge state counts whose address width forces series bank cascades",
    },
    TierDef {
        name: "compaction-heavy",
        summary: "wide inputs + tiny per-state support + heavy don't-cares: column compaction",
    },
    TierDef {
        name: "always-on",
        summary: "near-zero idle machines where clock control is a pure loss",
    },
    TierDef {
        name: "wide-input",
        summary: "input counts past the exhaustive-verify horizon: sampled verification",
    },
    TierDef {
        name: "tight-device",
        summary: "machines started on the smallest family member: device upsizing",
    },
    TierDef {
        name: "ff-fallback",
        summary: "unmappable under restricted options: EMB→FF fallback + synth budgets",
    },
    TierDef {
        name: "budget-squeeze",
        summary: "placement effort budgets exhausted mid-anneal: best-seen results",
    },
    TierDef {
        name: "eco-squeeze",
        summary: "route budgets sized so the ECO placement fails but full placement routes",
    },
];

/// Names of all tiers, in reporting order.
#[must_use]
pub fn tier_names() -> Vec<&'static str> {
    TIERS.iter().map(|t| t.name).collect()
}

/// FNV-1a over a tier name: stable per-tier seed offset.
fn tier_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Uniform draw in `[lo, hi]` (inclusive).
fn pick(rng: &mut SmallRng, lo: usize, hi: usize) -> usize {
    rng.random_range(lo..hi + 1)
}

/// Quantize a fraction to milli-units so the item-name codec round-trips
/// exactly (spec f64 knobs are always multiples of 1/1000).
fn milli(rng: &mut SmallRng, lo: u32, hi: u32) -> f64 {
    f64::from(rng.random_range(lo..hi + 1)) / 1000.0
}

/// The spec for item `index` of `tier` under `corpus_seed`, or `None`
/// for an unknown tier name. Deterministic: the same triple always
/// yields the same spec, and the spec's `name` is the encoded item name
/// (so [`decode_spec`] of a generated machine's name reproduces it).
#[must_use]
pub fn spec(tier: &str, index: usize, corpus_seed: u64) -> Option<StgSpec> {
    if !TIERS.iter().any(|t| t.name == tier) {
        return None;
    }
    let mut key = corpus_seed ^ tier_hash(tier) ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = SmallRng::seed_from_u64(splitmix64(&mut key));
    let mut s = base_spec(tier, &mut rng);
    s.seed = rng.random();
    s.name = encode_spec(tier, &s);
    Some(s)
}

/// Tier parameter grids. All f64 knobs are drawn in milli-units so the
/// codec is exact; `seed`/`name` are filled in by [`spec`].
fn base_spec(tier: &str, rng: &mut SmallRng) -> StgSpec {
    let mut s = StgSpec::new("corpus");
    match tier {
        "nominal" => {
            s.states = pick(rng, 4, 24);
            s.inputs = pick(rng, 2, 5);
            s.outputs = pick(rng, 1, 4);
            s.transitions = s.states * pick(rng, 2, 4);
            s.self_loop_bias = milli(rng, 200, 500);
            s.moore = rng.random_bool(0.25);
            s.idle_line = if rng.random_bool(0.5) { Some(0) } else { None };
        }
        "series-cascade" => {
            // 5–6 state bits + 10 inputs > 14 address lines; the flow
            // profile disables compaction so the series rung must engage.
            // The widths sit just past the single-BRAM limit (2–4 banks):
            // deep enough to cascade, shallow enough that a corpus run
            // is not dominated by placing bank farms.
            s.states = pick(rng, 17, 40);
            s.inputs = 10;
            s.outputs = pick(rng, 2, 6);
            s.transitions = s.states * 3;
            s.max_support = Some(pick(rng, 3, 4));
            s.self_loop_bias = milli(rng, 100, 300);
            s.idle_line = Some(0);
        }
        "compaction-heavy" => {
            // Wide interface, tiny per-state support, heavy don't-cares:
            // the Fig. 4 column-compaction shape.
            s.states = pick(rng, 6, 16);
            s.inputs = pick(rng, 10, 14);
            s.outputs = pick(rng, 1, 4);
            s.transitions = s.states * pick(rng, 3, 6);
            s.max_support = Some(pick(rng, 2, 4));
            s.dont_care_density = milli(rng, 400, 900);
            s.self_loop_bias = milli(rng, 200, 400);
            s.idle_line = Some(0);
        }
        "always-on" => {
            // No idle line, zero self-loop bias: the machine transitions
            // every cycle, so gating its clock saves ~nothing.
            s.states = pick(rng, 8, 24);
            s.inputs = pick(rng, 3, 6);
            s.outputs = pick(rng, 2, 5);
            s.transitions = s.states * pick(rng, 3, 5);
            s.self_loop_bias = 0.0;
            s.idle_line = None;
            s.fanout_skew = milli(rng, 0, 1500);
        }
        "wide-input" => {
            // Past the exhaustive-verify horizon the profile sets.
            s.states = pick(rng, 6, 14);
            s.inputs = pick(rng, 13, 16);
            s.outputs = pick(rng, 1, 4);
            s.transitions = s.states * pick(rng, 3, 5);
            s.max_support = Some(pick(rng, 3, 5));
            s.self_loop_bias = milli(rng, 200, 400);
            s.idle_line = Some(0);
        }
        "tight-device" => {
            // Big enough that the profile's smallest-family start device
            // cannot host the FF baseline or the EMB cone.
            s.states = pick(rng, 24, 48);
            s.inputs = pick(rng, 6, 8);
            s.outputs = pick(rng, 4, 8);
            s.transitions = s.states * 3;
            s.max_support = Some(pick(rng, 3, 5));
            s.self_loop_bias = milli(rng, 200, 400);
            s.idle_line = Some(0);
        }
        "ff-fallback" => {
            // Needs >14 address bits; the profile forbids both escape
            // rungs, so mapping reports DoesNotFit and the ladder lands
            // on the FF implementation.
            s.states = pick(rng, 16, 40);
            s.inputs = pick(rng, 11, 13);
            s.outputs = pick(rng, 2, 5);
            s.transitions = s.states * pick(rng, 3, 5);
            s.max_support = Some(pick(rng, 4, 6));
            s.self_loop_bias = milli(rng, 200, 400);
            s.idle_line = Some(0);
        }
        "budget-squeeze" => {
            // Enough placeable entities that a tiny move budget runs out.
            s.states = pick(rng, 24, 40);
            s.inputs = pick(rng, 5, 7);
            s.outputs = pick(rng, 4, 8);
            s.transitions = s.states * 4;
            s.self_loop_bias = milli(rng, 200, 400);
            s.idle_line = Some(0);
        }
        "eco-squeeze" => {
            // Clock-controlled machines sized so the profile's route
            // budget fails the (longer-wirelength) ECO placement while
            // the fully annealed placement still routes.
            s.states = pick(rng, 12, 24);
            s.inputs = pick(rng, 4, 6);
            s.outputs = pick(rng, 2, 4);
            s.transitions = s.states * pick(rng, 3, 4);
            s.self_loop_bias = milli(rng, 300, 500);
            s.idle_line = Some(0);
        }
        _ => unreachable!("spec() rejects unknown tiers before dispatch"),
    }
    s
}

/// Encodes a tier + spec as a self-describing item name:
/// `cx.<tier>.s<states>.i<inputs>.o<outputs>.t<transitions>.u<support|n>.`
/// `b<bias‰>.m<0|1>.q<idle-col|n>.d<density‰>.k<skew‰>.x<seed-hex>`.
/// All f64 knobs are stored in milli-units (exact for corpus specs).
#[must_use]
pub fn encode_spec(tier: &str, spec: &StgSpec) -> String {
    let opt = |v: Option<usize>| v.map_or_else(|| "n".to_string(), |x| x.to_string());
    let m = |f: f64| (f * 1000.0).round() as i64;
    format!(
        "cx.{tier}.s{}.i{}.o{}.t{}.u{}.b{}.m{}.q{}.d{}.k{}.x{:016x}",
        spec.states,
        spec.inputs,
        spec.outputs,
        spec.transitions,
        opt(spec.max_support),
        m(spec.self_loop_bias),
        u8::from(spec.moore),
        opt(spec.idle_line),
        m(spec.dont_care_density),
        m(spec.fanout_skew),
        spec.seed,
    )
}

/// Decodes an item name produced by [`encode_spec`] back into its tier
/// and spec (`spec.name` is the full item name). Returns `None` for
/// anything that is not a well-formed corpus item name.
#[must_use]
pub fn decode_spec(name: &str) -> Option<(String, StgSpec)> {
    let mut parts = name.split('.');
    if parts.next()? != "cx" {
        return None;
    }
    let tier = parts.next()?.to_string();
    let mut s = StgSpec::new(name);
    let mut seen = 0u32;
    for part in parts {
        if part.len() < 2 || !part.is_ascii() {
            return None;
        }
        let (tag, val) = part.split_at(1);
        let opt_usize = |v: &str| -> Option<Option<usize>> {
            if v == "n" {
                Some(None)
            } else {
                v.parse().ok().map(Some)
            }
        };
        let frac = |v: &str| -> Option<f64> { v.parse::<i64>().ok().map(|m| m as f64 / 1000.0) };
        match tag {
            "s" => s.states = val.parse().ok()?,
            "i" => s.inputs = val.parse().ok()?,
            "o" => s.outputs = val.parse().ok()?,
            "t" => s.transitions = val.parse().ok()?,
            "u" => s.max_support = opt_usize(val)?,
            "b" => s.self_loop_bias = frac(val)?,
            "m" => s.moore = val == "1",
            "q" => s.idle_line = opt_usize(val)?,
            "d" => s.dont_care_density = frac(val)?,
            "k" => s.fanout_skew = frac(val)?,
            "x" => s.seed = u64::from_str_radix(val, 16).ok()?,
            _ => return None,
        }
        seen += 1;
    }
    if seen != 11 {
        return None;
    }
    Some((tier, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::generate;

    #[test]
    fn specs_are_deterministic_per_triple() {
        for t in &TIERS {
            let a = spec(t.name, 7, 42).expect("known tier");
            let b = spec(t.name, 7, 42).expect("known tier");
            assert_eq!(a, b, "{}", t.name);
            let c = spec(t.name, 8, 42).expect("known tier");
            assert_ne!(a, c, "{}: index must matter", t.name);
            let d = spec(t.name, 7, 43).expect("known tier");
            assert_ne!(a, d, "{}: corpus seed must matter", t.name);
        }
        assert!(spec("nonesuch", 0, 1).is_none());
    }

    #[test]
    fn every_tier_generates_valid_machines() {
        for t in &TIERS {
            for idx in 0..12 {
                let s = spec(t.name, idx, 2026).expect("known tier");
                let stg = generate(&s)
                    .unwrap_or_else(|e| panic!("{} #{idx}: generate failed: {e}", t.name));
                assert!(stg.is_deterministic(), "{} #{idx}", t.name);
                assert_eq!(stg.num_states(), s.states, "{} #{idx}", t.name);
            }
        }
    }

    #[test]
    fn codec_roundtrips_every_tier() {
        for t in &TIERS {
            for idx in 0..16 {
                let s = spec(t.name, idx, 99).expect("known tier");
                let (tier, decoded) = decode_spec(&s.name).expect("well-formed name");
                assert_eq!(tier, t.name);
                assert_eq!(decoded, s, "{} #{idx}: codec must be exact", t.name);
                // And the decoded spec regenerates the identical machine.
                assert_eq!(
                    generate(&decoded).expect("generates"),
                    generate(&s).expect("generates"),
                    "{} #{idx}",
                    t.name
                );
            }
        }
    }

    #[test]
    fn decode_rejects_malformed_names() {
        assert!(decode_spec("").is_none());
        assert!(decode_spec("prep4").is_none());
        assert!(decode_spec("cx.nominal").is_none());
        assert!(decode_spec("cx.nominal.s4.i2").is_none());
        assert!(decode_spec("cx.nominal.szap.i2.o1.t8.un.b300.m0.qn.d0.k0.x1").is_none());
        let good = spec("nominal", 0, 1).expect("known tier");
        assert!(decode_spec(&good.name).is_some());
    }
}
