//! Graphviz (DOT) export of state-transition graphs.
//!
//! Renders an [`Stg`] in the style of the paper's Fig. 2a: nodes are
//! states (reset state double-circled), edges are labelled
//! `input / output`. Feed the output to `dot -Tsvg` for a diagram.
//!
//! [`Stg`]: crate::stg::Stg

use crate::stg::Stg;
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotOptions {
    /// Merge parallel edges (same source and destination) into one edge
    /// with stacked labels.
    pub merge_parallel_edges: bool,
    /// Left-to-right layout instead of top-down.
    pub left_to_right: bool,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            merge_parallel_edges: true,
            left_to_right: false,
        }
    }
}

/// Renders the machine as DOT text.
#[must_use]
pub fn render(stg: &Stg, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(stg.name()));
    if opts.left_to_right {
        let _ = writeln!(out, "  rankdir=LR;");
    }
    let _ = writeln!(out, "  node [shape=circle];");
    for s in stg.states() {
        let shape = if s == stg.reset_state() {
            " [shape=doublecircle]"
        } else {
            ""
        };
        let _ = writeln!(out, "  \"{}\"{shape};", escape(stg.state_name(s)));
    }
    if opts.merge_parallel_edges {
        use std::collections::BTreeMap;
        let mut edges: BTreeMap<(u32, u32), Vec<String>> = BTreeMap::new();
        for t in stg.transitions() {
            edges
                .entry((t.from.0, t.to.0))
                .or_default()
                .push(format!("{} / {}", t.input, t.output));
        }
        for ((from, to), labels) in edges {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                escape(stg.state_name(crate::stg::StateId(from))),
                escape(stg.state_name(crate::stg::StateId(to))),
                labels.join("\\n")
            );
        }
    } else {
        for t in stg.transitions() {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{} / {}\"];",
                escape(stg.state_name(t.from)),
                escape(stg.state_name(t.to)),
                t.input,
                t.output
            );
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks::sequence_detector_0101;

    #[test]
    fn renders_all_states_and_edges() {
        let stg = sequence_detector_0101();
        let dot = render(&stg, &DotOptions::default());
        assert!(dot.starts_with("digraph \"seq0101\""));
        for name in ["A", "B", "C", "D"] {
            assert!(dot.contains(&format!("\"{name}\"")), "{dot}");
        }
        assert!(dot.contains("doublecircle"), "reset state marked");
        assert!(dot.contains("1 / 1"), "detection edge labelled");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn unmerged_mode_emits_one_edge_per_transition() {
        let stg = sequence_detector_0101();
        let dot = render(
            &stg,
            &DotOptions {
                merge_parallel_edges: false,
                left_to_right: true,
            },
        );
        assert_eq!(dot.matches(" -> ").count(), stg.transitions().len());
        assert!(dot.contains("rankdir=LR"));
    }

    #[test]
    fn names_are_escaped() {
        let mut b = crate::stg::StgBuilder::new("we\"ird", 1, 1);
        let a = b.state("st\"ate");
        b.transition(a, "-", a, "0");
        let stg = b.build().unwrap();
        let dot = render(&stg, &DotOptions::default());
        assert!(dot.contains("st\\\"ate"));
    }
}
