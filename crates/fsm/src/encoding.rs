//! State encodings.
//!
//! The number of flip-flops (or BRAM address bits) an FSM needs depends on
//! the encoding (paper Sec. 4.1). Three classic styles are provided:
//!
//! * **Binary** (sequential): `ceil(log2 N)` bits — what the EMB mapping
//!   uses, since state bits feed BRAM address lines.
//! * **Gray**: same width, adjacent codes differ in one bit (lower switching
//!   activity on the state register).
//! * **One-hot**: `N` bits — common for LUT-based FPGA FSMs.
//!
//! For the EMB mapping the paper requires the reset state to live at the
//! address formed by the *cleared* output latches, i.e. address 0
//! (Sec. 4.2). All encoders therefore assign code 0 to the reset state.

use crate::stg::{StateId, Stg};
use std::fmt;

/// The encoding style to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodingStyle {
    /// Sequential binary encoding, `ceil(log2 N)` bits.
    #[default]
    Binary,
    /// Gray-code encoding, `ceil(log2 N)` bits.
    Gray,
    /// One-hot encoding, `N` bits (reset state gets the all-zero code so the
    /// cleared register is legal; this is the "one-hot with zero reset"
    /// variant, sometimes called one-hot-zero or "almost one-hot").
    OneHotZero,
}

impl fmt::Display for EncodingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodingStyle::Binary => write!(f, "binary"),
            EncodingStyle::Gray => write!(f, "gray"),
            EncodingStyle::OneHotZero => write!(f, "one-hot"),
        }
    }
}

/// A concrete assignment of codes to states.
///
/// Codes are little-endian: bit 0 of the code is state bit 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEncoding {
    style: EncodingStyle,
    bits: usize,
    codes: Vec<u64>,
}

impl StateEncoding {
    /// Encodes the states of `stg` with the requested style.
    ///
    /// The reset state always receives code 0.
    ///
    /// # Panics
    ///
    /// Panics if the machine has more than 2^63 states (impossible in
    /// practice) or, for one-hot, more than 64 states with the compact
    /// `u64` code representation — callers map such machines with binary
    /// encoding anyway.
    #[must_use]
    pub fn assign(stg: &Stg, style: EncodingStyle) -> Self {
        let n = stg.num_states();
        let reset = stg.reset_state().index();
        match style {
            EncodingStyle::Binary | EncodingStyle::Gray => {
                let bits = bits_for_states(n);
                // Order: reset first, then remaining states in id order.
                let mut codes = vec![0u64; n];
                let mut seq: Vec<usize> = Vec::with_capacity(n);
                seq.push(reset);
                seq.extend((0..n).filter(|&i| i != reset));
                for (next, s) in seq.into_iter().enumerate() {
                    let next = next as u64;
                    codes[s] = if style == EncodingStyle::Gray {
                        next ^ (next >> 1)
                    } else {
                        next
                    };
                }
                StateEncoding { style, bits, codes }
            }
            EncodingStyle::OneHotZero => {
                assert!(n <= 64, "one-hot u64 codes support at most 64 states");
                let bits = (n - 1).max(1);
                let mut codes = vec![0u64; n];
                let mut hot = 0usize;
                for (s, code) in codes.iter_mut().enumerate() {
                    if s != reset {
                        *code = 1u64 << hot;
                        hot += 1;
                    }
                }
                StateEncoding { style, bits, codes }
            }
        }
    }

    /// [`StateEncoding::assign`] widened to at least `min_bits` state
    /// bits: codes are unchanged, only the declared width grows. The
    /// extra high bits are zero for every code, so a memory table built
    /// from a padded encoding places all reachable words in the low
    /// `2^(inputs + bits_for_states(n))` addresses — exactly what a
    /// fixed-geometry overlay base needs to host machines of any state
    /// count up to its padded capacity.
    ///
    /// Padding a one-hot encoding is refused (its width is already the
    /// state count; widening it has no overlay meaning).
    pub fn assign_padded(
        stg: &Stg,
        style: EncodingStyle,
        min_bits: usize,
    ) -> Result<Self, String> {
        if style == EncodingStyle::OneHotZero {
            return Err("one-hot encodings cannot be width-padded".to_string());
        }
        if min_bits > 63 {
            return Err(format!("padded state width {min_bits} exceeds 63 bits"));
        }
        let mut enc = StateEncoding::assign(stg, style);
        enc.bits = enc.bits.max(min_bits);
        Ok(enc)
    }

    /// The style used.
    #[must_use]
    pub fn style(&self) -> EncodingStyle {
        self.style
    }

    /// Number of state bits `s`.
    #[must_use]
    pub fn num_bits(&self) -> usize {
        self.bits
    }

    /// The code assigned to `state`, as a little-endian packed integer.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn code(&self, state: StateId) -> u64 {
        self.codes[state.index()]
    }

    /// The code assigned to `state`, as a bit vector (`bits()` long).
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    #[must_use]
    pub fn code_bits(&self, state: StateId) -> Vec<bool> {
        let c = self.code(state);
        (0..self.bits).map(|i| (c >> i) & 1 == 1).collect()
    }

    /// Finds the state with the given code, if any.
    #[must_use]
    pub fn decode(&self, code: u64) -> Option<StateId> {
        self.codes
            .iter()
            .position(|&c| c == code)
            .map(|i| StateId(i as u32))
    }
}

/// Bits needed to binary-encode `n` states (at least 1).
#[must_use]
pub fn bits_for_states(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn machine(n: usize, reset_idx: usize) -> Stg {
        let mut b = StgBuilder::new("m", 1, 1);
        let ids: Vec<StateId> = (0..n).map(|i| b.state(format!("s{i}"))).collect();
        for i in 0..n {
            b.transition(ids[i], "-", ids[(i + 1) % n], "0");
        }
        b.reset(ids[reset_idx]);
        b.build().unwrap()
    }

    #[test]
    fn bits_for_states_is_ceil_log2() {
        assert_eq!(bits_for_states(1), 1);
        assert_eq!(bits_for_states(2), 1);
        assert_eq!(bits_for_states(3), 2);
        assert_eq!(bits_for_states(4), 2);
        assert_eq!(bits_for_states(5), 3);
        assert_eq!(bits_for_states(16), 4);
        assert_eq!(bits_for_states(17), 5);
        assert_eq!(bits_for_states(48), 6);
    }

    #[test]
    fn binary_codes_are_unique_and_reset_is_zero() {
        for reset in [0usize, 3] {
            let stg = machine(7, reset);
            let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
            assert_eq!(enc.num_bits(), 3);
            assert_eq!(enc.code(stg.reset_state()), 0);
            let mut seen: Vec<u64> = stg.states().map(|s| enc.code(s)).collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 7);
            assert!(seen.iter().all(|&c| c < 8));
        }
    }

    #[test]
    fn gray_adjacent_codes_differ_in_one_bit() {
        let stg = machine(8, 0);
        let enc = StateEncoding::assign(&stg, EncodingStyle::Gray);
        // Collect codes in assignment sequence (reset, then id order).
        let mut codes: Vec<u64> = Vec::new();
        codes.push(enc.code(stg.reset_state()));
        for s in stg.states() {
            if s != stg.reset_state() {
                codes.push(enc.code(s));
            }
        }
        for w in codes.windows(2) {
            assert_eq!((w[0] ^ w[1]).count_ones(), 1, "{:b} vs {:b}", w[0], w[1]);
        }
    }

    #[test]
    fn one_hot_zero_shape() {
        let stg = machine(5, 2);
        let enc = StateEncoding::assign(&stg, EncodingStyle::OneHotZero);
        assert_eq!(enc.num_bits(), 4);
        assert_eq!(enc.code(stg.reset_state()), 0);
        for s in stg.states() {
            let c = enc.code(s);
            assert!(c.count_ones() <= 1);
        }
    }

    #[test]
    fn decode_inverts_code() {
        let stg = machine(6, 1);
        for style in [
            EncodingStyle::Binary,
            EncodingStyle::Gray,
            EncodingStyle::OneHotZero,
        ] {
            let enc = StateEncoding::assign(&stg, style);
            for s in stg.states() {
                assert_eq!(enc.decode(enc.code(s)), Some(s), "style {style}");
            }
            assert_eq!(enc.decode(u64::MAX), None);
        }
    }

    #[test]
    fn code_bits_matches_code() {
        let stg = machine(5, 0);
        let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
        for s in stg.states() {
            let bits = enc.code_bits(s);
            let packed = bits
                .iter()
                .enumerate()
                .fold(0u64, |a, (i, &b)| a | (u64::from(b) << i));
            assert_eq!(packed, enc.code(s));
        }
    }

    #[test]
    fn padded_encoding_widens_without_moving_codes() {
        let stg = machine(7, 3);
        let plain = StateEncoding::assign(&stg, EncodingStyle::Binary);
        let padded = StateEncoding::assign_padded(&stg, EncodingStyle::Binary, 6).unwrap();
        assert_eq!(plain.num_bits(), 3);
        assert_eq!(padded.num_bits(), 6);
        for s in stg.states() {
            assert_eq!(plain.code(s), padded.code(s));
            assert_eq!(padded.code_bits(s).len(), 6);
        }
        // A min width below the natural width is a no-op.
        let narrow = StateEncoding::assign_padded(&stg, EncodingStyle::Binary, 2).unwrap();
        assert_eq!(narrow.num_bits(), 3);
        // One-hot refuses padding with a typed error, not a panic.
        assert!(StateEncoding::assign_padded(&stg, EncodingStyle::OneHotZero, 6).is_err());
        assert!(StateEncoding::assign_padded(&stg, EncodingStyle::Binary, 64).is_err());
    }

    #[test]
    fn single_state_machine_encodes() {
        let stg = machine(1, 0);
        let enc = StateEncoding::assign(&stg, EncodingStyle::Binary);
        assert_eq!(enc.num_bits(), 1);
        assert_eq!(enc.code(StateId(0)), 0);
    }
}
