//! Seeded synthetic STG generation.
//!
//! The paper evaluates on MCNC LOGIC SYNTHESIS '91 FSM benchmarks plus
//! PREP4. Those KISS2 files are not redistributable here, so
//! [`generate`] produces machines with a *matched structural signature*:
//! given (states, inputs, outputs, transition count, per-state input
//! support, self-loop bias), it emits a deterministic, complete,
//! strongly-connected-from-reset machine. The mapping algorithm and the
//! power flows only depend on this structure, so matched signatures
//! exercise the same code paths the real benchmarks would (see DESIGN.md
//! §2 for the substitution argument).
//!
//! Construction guarantees, by design rather than by post-checking:
//!
//! * per-state input cubes are **pairwise disjoint** (the machine is
//!   deterministic regardless of priority order) and **complete** over the
//!   state's support columns (the completion rule never fires on support
//!   inputs);
//! * every state is reachable from the reset state (a spanning tree is
//!   embedded first);
//! * self-loop transitions re-assert the state's *hold output*, so steering
//!   inputs into self-loop cubes produces genuinely idle cycles (needed for
//!   the Sec. 6 clock-control experiments).

use crate::pattern::{index_to_bits, Pattern, Trit};
use crate::stg::{StateId, Stg, StgBuilder};
use xrand::SmallRng;

/// Specification of a synthetic machine.
#[derive(Debug, Clone, PartialEq)]
pub struct StgSpec {
    /// Machine name.
    pub name: String,
    /// Number of states (≥ 1).
    pub states: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target number of transitions (best effort; the generator stops
    /// splitting when each state's subspace is fully specified).
    pub transitions: usize,
    /// Maximum input columns any single state may read (`None` = all).
    /// Lower values create the column-compaction opportunities of Fig. 4.
    pub max_support: Option<usize>,
    /// Probability that a non-tree transition is a self-loop (idle states).
    pub self_loop_bias: f64,
    /// If `true`, outputs are a function of the destination state (Moore).
    pub moore: bool,
    /// Dedicated quiescent input column: when `Some(col)`, every state
    /// self-loops (holding its output) whenever input `col` is 0 — the
    /// "no request pending" structure real control FSMs have, which makes
    /// their idle conditions compact (paper Sec. 6). For Mealy machines
    /// the hold outputs are all-zero (an idle controller asserts nothing).
    pub idle_line: Option<usize>,
    /// RNG seed; equal specs generate identical machines.
    pub seed: u64,
}

impl StgSpec {
    /// A reasonable default spec for quick experiments.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StgSpec {
            name: name.into(),
            states: 8,
            inputs: 4,
            outputs: 2,
            transitions: 24,
            max_support: None,
            self_loop_bias: 0.3,
            moore: false,
            idle_line: None,
            seed: 1,
        }
    }
}

/// Generates a machine from a spec.
///
/// # Panics
///
/// Panics if `states == 0` or `inputs > 20` (dense subspaces would blow up).
#[must_use]
pub fn generate(spec: &StgSpec) -> Stg {
    assert!(spec.states > 0, "need at least one state");
    assert!(spec.inputs <= 20, "generator supports at most 20 inputs");
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5eed_f5ee_d5ee_df00);

    let n = spec.states;
    let idle_line = spec.idle_line;
    if let Some(col) = idle_line {
        assert!(col < spec.inputs, "idle line column out of range");
    }
    let per_state_target = spec
        .transitions
        .div_ceil(n)
        .saturating_sub(usize::from(idle_line.is_some()))
        .max(1);

    // Per-state support columns for transition splitting. The idle line
    // (when present) is excluded here — it is pinned to 1 in every
    // non-idle transition — but still counts toward the support budget.
    let split_budget = spec
        .max_support
        .unwrap_or(spec.inputs)
        .min(spec.inputs)
        .saturating_sub(usize::from(idle_line.is_some()));
    let pool: Vec<usize> = (0..spec.inputs).filter(|c| Some(*c) != idle_line).collect();
    let support_size = split_budget.min(pool.len());
    let supports: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let mut cols = pool.clone();
            // Fisher–Yates prefix shuffle.
            for i in 0..support_size.min(cols.len()) {
                let j = rng.random_range(i..cols.len());
                cols.swap(i, j);
            }
            let mut chosen: Vec<usize> = cols[..support_size].to_vec();
            chosen.sort_unstable();
            chosen
        })
        .collect();

    // Per-state hold output (the output its self-loops assert). With an
    // idle line on a Mealy machine the quiescent output is all-zero, as
    // in real controllers; Moore machines keep per-state outputs.
    let zero_hold = idle_line.is_some() && !spec.moore;
    let hold_outputs: Vec<Vec<bool>> = (0..n)
        .map(|s| {
            (0..spec.outputs)
                .map(|_| !zero_hold && s != 0 && rng.random_bool(0.5))
                .collect()
        })
        .collect();

    // Spanning tree: state k (k>0) is entered from some earlier state
    // that still has leaf capacity (each state can host at most
    // 2^support_size distinct outgoing leaves).
    let capacity = 1usize << support_size.min(20);
    let mut child_count = vec![0usize; n];
    let tree_parent: Vec<usize> = (0..n)
        .map(|k| {
            if k == 0 {
                return 0;
            }
            let available: Vec<usize> = (0..k).filter(|&p| child_count[p] < capacity).collect();
            assert!(
                !available.is_empty(),
                "spanning tree ran out of leaf capacity (support too small)"
            );
            let p = available[rng.random_range(0..available.len())];
            child_count[p] += 1;
            p
        })
        .collect();

    // For each state, split its support subspace into disjoint cubes.
    let mut b = StgBuilder::new(spec.name.clone(), spec.inputs, spec.outputs);
    let ids: Vec<StateId> = (0..n).map(|i| b.state(format!("s{i}"))).collect();
    b.reset(ids[0]);

    for s in 0..n {
        let support = &supports[s];
        // The quiescent self-loop comes first (highest priority).
        if let Some(col) = idle_line {
            let mut idle_cube = Pattern::all_dont_care(spec.inputs);
            idle_cube.set(col, Trit::Zero);
            b.transition_pat(
                ids[s],
                idle_cube,
                ids[s],
                Pattern::from_bits(&hold_outputs[s]),
            );
        }
        // Start with the universal cube over the support (idle line pinned
        // to 1); split until the target leaf count is reached or nothing
        // is splittable.
        let mut leaves: Vec<Pattern> = vec![{
            let mut c = Pattern::all_dont_care(spec.inputs);
            if let Some(col) = idle_line {
                c.set(col, Trit::One);
            }
            c
        }];
        while leaves.len() < per_state_target {
            // Pick a leaf with a remaining don't-care support column.
            let candidates: Vec<usize> = leaves
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    support
                        .iter()
                        .any(|&col| matches!(c.trit(col), Trit::DontCare))
                })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let pick = candidates[rng.random_range(0..candidates.len())];
            let cube = leaves.swap_remove(pick);
            let dc_cols: Vec<usize> = support
                .iter()
                .copied()
                .filter(|&col| matches!(cube.trit(col), Trit::DontCare))
                .collect();
            let col = dc_cols[rng.random_range(0..dc_cols.len())];
            let mut zero = cube.clone();
            zero.set(col, Trit::Zero);
            let mut one = cube;
            one.set(col, Trit::One);
            leaves.push(zero);
            leaves.push(one);
        }

        // Destinations: children of s in the spanning tree must each be
        // reachable via some leaf; assign them first.
        let children: Vec<usize> = (1..n).filter(|&k| tree_parent[k] == s).collect();
        let mut dests: Vec<usize> = Vec::with_capacity(leaves.len());
        for (i, _) in leaves.iter().enumerate() {
            if i < children.len() {
                dests.push(children[i]);
            } else if n == 1 || rng.random_bool(spec.self_loop_bias) {
                dests.push(s);
            } else {
                // Exclude `s` so self-loops appear only at the configured
                // bias (or through the idle line), keeping idle conditions
                // as structured as the spec asked for.
                let d = rng.random_range(0..n - 1);
                dests.push(if d >= s { d + 1 } else { d });
            }
        }
        // If there were more children than leaves (tiny machines), retarget
        // random leaves — guaranteed possible because per_state_target >= 1
        // and children < n <= leaves * something; we instead split further.
        let mut extra = children.len().saturating_sub(leaves.len());
        while extra > 0 {
            // Force additional splits to host remaining children.
            let idx = leaves
                .iter()
                .position(|c| {
                    support
                        .iter()
                        .any(|&col| matches!(c.trit(col), Trit::DontCare))
                })
                .unwrap_or(0);
            let cube = leaves.swap_remove(idx);
            let d = dests.swap_remove(idx);
            let dc_col = support
                .iter()
                .copied()
                .find(|&col| matches!(cube.trit(col), Trit::DontCare));
            match dc_col {
                Some(col) => {
                    let mut zero = cube.clone();
                    zero.set(col, Trit::Zero);
                    let mut one = cube;
                    one.set(col, Trit::One);
                    leaves.push(zero);
                    dests.push(d);
                    leaves.push(one);
                    dests.push(children[children.len() - extra]);
                    extra -= 1;
                }
                None => {
                    // Support exhausted: fall back to overwriting arbitrary
                    // destinations (reachability via other states' random
                    // edges is then only probabilistic; avoided by sensible
                    // specs where 2^support >= fanout).
                    leaves.push(cube);
                    dests.push(children[children.len() - extra]);
                    extra -= 1;
                }
            }
        }

        for (cube, &dest) in leaves.iter().zip(&dests) {
            let out_bits: Vec<bool> = if dest == s {
                hold_outputs[s].clone()
            } else if spec.moore {
                hold_outputs[dest].clone()
            } else {
                let word: u64 = rng.random();
                index_to_bits(word, spec.outputs)
            };
            b.transition_pat(
                ids[s],
                cube.clone(),
                ids[dest],
                Pattern::from_bits(&out_bits),
            );
        }
    }

    let stg = b.build().expect("generator builds valid machines");
    debug_assert!(stg.is_deterministic());
    stg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{reachable_states, stats};

    #[test]
    fn generated_machine_matches_signature() {
        let spec = StgSpec {
            name: "gen".into(),
            states: 12,
            inputs: 5,
            outputs: 3,
            transitions: 48,
            max_support: Some(3),
            self_loop_bias: 0.4,
            moore: false,
            idle_line: None,
            seed: 42,
        };
        let stg = generate(&spec);
        let st = stats(&stg);
        assert_eq!(st.states, 12);
        assert_eq!(st.inputs, 5);
        assert_eq!(st.outputs, 3);
        assert!(st.transitions >= 12, "at least one transition per state");
        assert!(st.max_input_support <= 3, "support cap respected");
    }

    #[test]
    fn generated_machine_is_deterministic_and_reachable() {
        for seed in 0..8u64 {
            let spec = StgSpec {
                seed,
                states: 9,
                inputs: 4,
                outputs: 2,
                transitions: 30,
                ..StgSpec::new(format!("g{seed}"))
            };
            let stg = generate(&spec);
            assert!(stg.is_deterministic(), "seed {seed}");
            assert_eq!(
                reachable_states(&stg).len(),
                stg.num_states(),
                "seed {seed}: all states reachable"
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = StgSpec::new("rep");
        assert_eq!(generate(&spec), generate(&spec));
        let other = StgSpec {
            seed: 2,
            ..StgSpec::new("rep")
        };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn moore_spec_generates_moore_machine() {
        let spec = StgSpec {
            moore: true,
            states: 6,
            inputs: 3,
            outputs: 4,
            transitions: 20,
            ..StgSpec::new("moore")
        };
        let stg = generate(&spec);
        assert_eq!(
            crate::machine::classify(&stg),
            crate::machine::FsmKind::Moore
        );
    }

    #[test]
    fn self_loops_hold_their_output() {
        let spec = StgSpec {
            self_loop_bias: 0.8,
            states: 8,
            inputs: 4,
            outputs: 2,
            transitions: 40,
            ..StgSpec::new("idle")
        };
        let stg = generate(&spec);
        for s in stg.states() {
            let loops: Vec<_> = stg.transitions_from(s).filter(|t| t.to == s).collect();
            for w in loops.windows(2) {
                assert_eq!(
                    w[0].output, w[1].output,
                    "all self-loops of a state assert the same hold output"
                );
            }
        }
    }

    #[test]
    fn generated_machines_are_complete_over_support() {
        let spec = StgSpec {
            states: 5,
            inputs: 3,
            outputs: 1,
            transitions: 15,
            max_support: None,
            ..StgSpec::new("complete")
        };
        let stg = generate(&spec);
        assert!(stg.is_complete());
    }
}
