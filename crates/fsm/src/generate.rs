//! Seeded synthetic STG generation.
//!
//! The paper evaluates on MCNC LOGIC SYNTHESIS '91 FSM benchmarks plus
//! PREP4. Those KISS2 files are not redistributable here, so
//! [`generate`] produces machines with a *matched structural signature*:
//! given (states, inputs, outputs, transition count, per-state input
//! support, self-loop bias), it emits a deterministic, complete,
//! strongly-connected-from-reset machine. The mapping algorithm and the
//! power flows only depend on this structure, so matched signatures
//! exercise the same code paths the real benchmarks would (see DESIGN.md
//! §2 for the substitution argument).
//!
//! Construction guarantees, by design rather than by post-checking:
//!
//! * per-state input cubes are **pairwise disjoint** (the machine is
//!   deterministic regardless of priority order) and **complete** over the
//!   state's support columns (the completion rule never fires on support
//!   inputs);
//! * every state is reachable from the reset state (a spanning tree is
//!   embedded first);
//! * self-loop transitions re-assert the state's *hold output*, so steering
//!   inputs into self-loop cubes produces genuinely idle cycles (needed for
//!   the Sec. 6 clock-control experiments).

use crate::pattern::{index_to_bits, Pattern, Trit};
use crate::stg::{StateId, Stg, StgBuilder};
use std::fmt;
use xrand::SmallRng;

/// Specification of a synthetic machine.
#[derive(Debug, Clone, PartialEq)]
pub struct StgSpec {
    /// Machine name.
    pub name: String,
    /// Number of states (≥ 1).
    pub states: usize,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Target number of transitions (best effort; the generator stops
    /// splitting when each state's subspace is fully specified).
    pub transitions: usize,
    /// Maximum input columns any single state may read (`None` = all).
    /// Lower values create the column-compaction opportunities of Fig. 4.
    pub max_support: Option<usize>,
    /// Probability that a non-tree transition is a self-loop (idle states).
    pub self_loop_bias: f64,
    /// If `true`, outputs are a function of the destination state (Moore).
    pub moore: bool,
    /// Dedicated quiescent input column: when `Some(col)`, every state
    /// self-loops (holding its output) whenever input `col` is 0 — the
    /// "no request pending" structure real control FSMs have, which makes
    /// their idle conditions compact (paper Sec. 6). For Mealy machines
    /// the hold outputs are all-zero (an idle controller asserts nothing).
    pub idle_line: Option<usize>,
    /// Don't-care density in `[0, 1]`: the fraction of each state's
    /// transition budget left *unsplit*, so cubes stay wide (more
    /// don't-care columns per transition, fewer transitions overall).
    /// `0.0` reproduces the dense historical behaviour byte-for-byte;
    /// `1.0` collapses every state to the fewest cubes that still host
    /// its spanning-tree children (one universal cube for leaf states,
    /// plus the idle self-loop when configured) — the
    /// compaction-friendliest shape a machine can have. Non-finite
    /// values are treated as `0.0`.
    pub dont_care_density: f64,
    /// Transition-fanout skew (≥ 0): `0.0` gives every state the same
    /// outgoing-transition target (historical behaviour, byte-identical);
    /// larger values allocate the machine's transition budget by a
    /// rank-based power law `(rank+1)^-skew` over a seed-shuffled state
    /// order, so a few hub states carry most of the fanout while the tail
    /// degenerates toward one outgoing cube. Drawn from a dedicated RNG
    /// stream, so turning the knob never perturbs the base machine shape
    /// decisions. Non-finite or negative values are treated as `0.0`.
    pub fanout_skew: f64,
    /// RNG seed; equal specs generate identical machines.
    pub seed: u64,
}

impl StgSpec {
    /// A reasonable default spec for quick experiments.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        StgSpec {
            name: name.into(),
            states: 8,
            inputs: 4,
            outputs: 2,
            transitions: 24,
            max_support: None,
            self_loop_bias: 0.3,
            moore: false,
            idle_line: None,
            dont_care_density: 0.0,
            fanout_skew: 0.0,
            seed: 1,
        }
    }
}

/// Degenerate-spec errors from [`generate`]. Typed instead of panicking so
/// corpus drivers and the daemon can feed arbitrary (possibly hostile)
/// specs through the generator without a `catch_unwind` fence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenerateError {
    /// `states == 0` — a machine needs at least one state.
    NoStates,
    /// `inputs > 20` — dense input subspaces would blow up.
    TooManyInputs {
        /// The offending input count.
        inputs: usize,
    },
    /// `idle_line` names a column outside `0..inputs`.
    IdleLineOutOfRange {
        /// The requested quiescent column.
        idle_line: usize,
        /// Number of input columns the spec actually has.
        inputs: usize,
    },
    /// The reachability spanning tree ran out of leaf capacity: with
    /// `2^support` outgoing cubes per state the requested state count
    /// cannot all be hosted. Unreachable for `support >= 1` by
    /// construction (every hosted state contributes its own capacity),
    /// kept typed as a defensive backstop.
    FanoutUnhostable {
        /// Requested state count.
        states: usize,
        /// Outgoing-leaf capacity per state (`2^support`).
        leaf_capacity: usize,
    },
    /// The STG builder rejected the assembled machine (internal
    /// invariant breach — should not happen for any spec).
    Invalid(String),
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::NoStates => write!(f, "spec needs at least one state"),
            GenerateError::TooManyInputs { inputs } => {
                write!(f, "generator supports at most 20 inputs, spec has {inputs}")
            }
            GenerateError::IdleLineOutOfRange { idle_line, inputs } => {
                write!(
                    f,
                    "idle line column {idle_line} out of range for {inputs} inputs"
                )
            }
            GenerateError::FanoutUnhostable {
                states,
                leaf_capacity,
            } => {
                write!(
                    f,
                    "spanning tree cannot host {states} states at {leaf_capacity} leaves per state"
                )
            }
            GenerateError::Invalid(msg) => write!(f, "generated machine rejected: {msg}"),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Generates a machine from a spec.
///
/// # Errors
///
/// Returns a typed [`GenerateError`] for degenerate specs (`states == 0`,
/// `inputs > 20`, an out-of-range `idle_line`) instead of panicking.
pub fn generate(spec: &StgSpec) -> Result<Stg, GenerateError> {
    if spec.states == 0 {
        return Err(GenerateError::NoStates);
    }
    if spec.inputs > 20 {
        return Err(GenerateError::TooManyInputs {
            inputs: spec.inputs,
        });
    }
    let idle_line = spec.idle_line;
    if let Some(col) = idle_line {
        if col >= spec.inputs {
            return Err(GenerateError::IdleLineOutOfRange {
                idle_line: col,
                inputs: spec.inputs,
            });
        }
    }
    let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5eed_f5ee_d5ee_df00);

    let n = spec.states;
    let per_state_target = spec
        .transitions
        .div_ceil(n)
        .saturating_sub(usize::from(idle_line.is_some()))
        .max(1);

    // Shape knobs. Both default to 0.0, which must reproduce the
    // historical machines byte-for-byte: the skew branch draws from a
    // *dedicated* RNG stream so the base stream below is untouched, and
    // the density scale is pure arithmetic (no draws at all).
    let density = if spec.dont_care_density.is_finite() {
        spec.dont_care_density.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let skew = if spec.fanout_skew.is_finite() && spec.fanout_skew > 0.0 {
        spec.fanout_skew
    } else {
        0.0
    };
    let leaf_targets: Vec<usize> = if skew == 0.0 && density == 0.0 {
        vec![per_state_target; n]
    } else {
        let raw: Vec<f64> = if skew > 0.0 {
            // Rank-based power law over a seed-shuffled state order, so
            // which states become hubs is itself seed-dependent.
            let mut skew_rng = SmallRng::seed_from_u64(spec.seed ^ 0x0fa0_0475_ce77_a11e);
            let mut order: Vec<usize> = (0..n).collect();
            for i in (1..n).rev() {
                let j = skew_rng.random_range(0..i + 1);
                order.swap(i, j);
            }
            let mut rank = vec![0usize; n];
            for (r, &s) in order.iter().enumerate() {
                rank[s] = r;
            }
            let weights: Vec<f64> = (0..n)
                .map(|s| ((rank[s] + 1) as f64).powf(-skew))
                .collect();
            let total: f64 = weights.iter().sum();
            let budget = (per_state_target * n) as f64;
            weights.iter().map(|w| budget * w / total).collect()
        } else {
            vec![per_state_target as f64; n]
        };
        raw.iter()
            .map(|t| (t * (1.0 - density)).round().max(1.0) as usize)
            .collect()
    };

    // Per-state support columns for transition splitting. The idle line
    // (when present) is excluded here — it is pinned to 1 in every
    // non-idle transition — but still counts toward the support budget.
    let split_budget = spec
        .max_support
        .unwrap_or(spec.inputs)
        .min(spec.inputs)
        .saturating_sub(usize::from(idle_line.is_some()));
    let pool: Vec<usize> = (0..spec.inputs).filter(|c| Some(*c) != idle_line).collect();
    let support_size = split_budget.min(pool.len());
    let supports: Vec<Vec<usize>> = (0..n)
        .map(|_| {
            let mut cols = pool.clone();
            // Fisher–Yates prefix shuffle.
            for i in 0..support_size.min(cols.len()) {
                let j = rng.random_range(i..cols.len());
                cols.swap(i, j);
            }
            let mut chosen: Vec<usize> = cols[..support_size].to_vec();
            chosen.sort_unstable();
            chosen
        })
        .collect();

    // Per-state hold output (the output its self-loops assert). With an
    // idle line on a Mealy machine the quiescent output is all-zero, as
    // in real controllers; Moore machines keep per-state outputs.
    let zero_hold = idle_line.is_some() && !spec.moore;
    let hold_outputs: Vec<Vec<bool>> = (0..n)
        .map(|s| {
            (0..spec.outputs)
                .map(|_| !zero_hold && s != 0 && rng.random_bool(0.5))
                .collect()
        })
        .collect();

    // Spanning tree: state k (k>0) is entered from some earlier state
    // that still has leaf capacity (each state can host at most
    // 2^support_size distinct outgoing leaves).
    let capacity = 1usize << support_size.min(20);
    let mut child_count = vec![0usize; n];
    let mut tree_parent = vec![0usize; n];
    for k in 1..n {
        let available: Vec<usize> = (0..k).filter(|&p| child_count[p] < capacity).collect();
        if available.is_empty() {
            return Err(GenerateError::FanoutUnhostable {
                states: n,
                leaf_capacity: capacity,
            });
        }
        let p = available[rng.random_range(0..available.len())];
        child_count[p] += 1;
        tree_parent[k] = p;
    }

    // For each state, split its support subspace into disjoint cubes.
    let mut b = StgBuilder::new(spec.name.clone(), spec.inputs, spec.outputs);
    let ids: Vec<StateId> = (0..n).map(|i| b.state(format!("s{i}"))).collect();
    b.reset(ids[0]);

    for s in 0..n {
        let support = &supports[s];
        // The quiescent self-loop comes first (highest priority).
        if let Some(col) = idle_line {
            let mut idle_cube = Pattern::all_dont_care(spec.inputs);
            idle_cube.set(col, Trit::Zero);
            b.transition_pat(
                ids[s],
                idle_cube,
                ids[s],
                Pattern::from_bits(&hold_outputs[s]),
            );
        }
        // Start with the universal cube over the support (idle line pinned
        // to 1); split until the target leaf count is reached or nothing
        // is splittable.
        let mut leaves: Vec<Pattern> = vec![{
            let mut c = Pattern::all_dont_care(spec.inputs);
            if let Some(col) = idle_line {
                c.set(col, Trit::One);
            }
            c
        }];
        while leaves.len() < leaf_targets[s] {
            // Pick a leaf with a remaining don't-care support column.
            let candidates: Vec<usize> = leaves
                .iter()
                .enumerate()
                .filter(|(_, c)| {
                    support
                        .iter()
                        .any(|&col| matches!(c.trit(col), Trit::DontCare))
                })
                .map(|(i, _)| i)
                .collect();
            if candidates.is_empty() {
                break;
            }
            let pick = candidates[rng.random_range(0..candidates.len())];
            let cube = leaves.swap_remove(pick);
            let dc_cols: Vec<usize> = support
                .iter()
                .copied()
                .filter(|&col| matches!(cube.trit(col), Trit::DontCare))
                .collect();
            let col = dc_cols[rng.random_range(0..dc_cols.len())];
            let mut zero = cube.clone();
            zero.set(col, Trit::Zero);
            let mut one = cube;
            one.set(col, Trit::One);
            leaves.push(zero);
            leaves.push(one);
        }

        // Destinations: children of s in the spanning tree must each be
        // reachable via some leaf; assign them first.
        let children: Vec<usize> = (1..n).filter(|&k| tree_parent[k] == s).collect();
        let mut dests: Vec<usize> = Vec::with_capacity(leaves.len());
        for (i, _) in leaves.iter().enumerate() {
            if i < children.len() {
                dests.push(children[i]);
            } else if n == 1 || rng.random_bool(spec.self_loop_bias) {
                dests.push(s);
            } else {
                // Exclude `s` so self-loops appear only at the configured
                // bias (or through the idle line), keeping idle conditions
                // as structured as the spec asked for.
                let d = rng.random_range(0..n - 1);
                dests.push(if d >= s { d + 1 } else { d });
            }
        }
        // If there were more children than leaves (tiny machines), retarget
        // random leaves — guaranteed possible because per_state_target >= 1
        // and children < n <= leaves * something; we instead split further.
        let mut extra = children.len().saturating_sub(leaves.len());
        while extra > 0 {
            // Force additional splits to host remaining children.
            let idx = leaves
                .iter()
                .position(|c| {
                    support
                        .iter()
                        .any(|&col| matches!(c.trit(col), Trit::DontCare))
                })
                .unwrap_or(0);
            let cube = leaves.swap_remove(idx);
            let d = dests.swap_remove(idx);
            let dc_col = support
                .iter()
                .copied()
                .find(|&col| matches!(cube.trit(col), Trit::DontCare));
            match dc_col {
                Some(col) => {
                    let mut zero = cube.clone();
                    zero.set(col, Trit::Zero);
                    let mut one = cube;
                    one.set(col, Trit::One);
                    leaves.push(zero);
                    dests.push(d);
                    leaves.push(one);
                    dests.push(children[children.len() - extra]);
                    extra -= 1;
                }
                None => {
                    // Support exhausted: fall back to overwriting arbitrary
                    // destinations (reachability via other states' random
                    // edges is then only probabilistic; avoided by sensible
                    // specs where 2^support >= fanout).
                    leaves.push(cube);
                    dests.push(children[children.len() - extra]);
                    extra -= 1;
                }
            }
        }

        for (cube, &dest) in leaves.iter().zip(&dests) {
            let out_bits: Vec<bool> = if dest == s {
                hold_outputs[s].clone()
            } else if spec.moore {
                hold_outputs[dest].clone()
            } else {
                let word: u64 = rng.random();
                index_to_bits(word, spec.outputs)
            };
            b.transition_pat(
                ids[s],
                cube.clone(),
                ids[dest],
                Pattern::from_bits(&out_bits),
            );
        }
    }

    let stg = b
        .build()
        .map_err(|e| GenerateError::Invalid(e.to_string()))?;
    debug_assert!(stg.is_deterministic());
    Ok(stg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{reachable_states, stats};

    #[test]
    fn generated_machine_matches_signature() {
        let spec = StgSpec {
            name: "gen".into(),
            states: 12,
            inputs: 5,
            outputs: 3,
            transitions: 48,
            max_support: Some(3),
            self_loop_bias: 0.4,
            moore: false,
            idle_line: None,
            dont_care_density: 0.0,
            fanout_skew: 0.0,
            seed: 42,
        };
        let stg = generate(&spec).expect("valid spec generates");
        let st = stats(&stg);
        assert_eq!(st.states, 12);
        assert_eq!(st.inputs, 5);
        assert_eq!(st.outputs, 3);
        assert!(st.transitions >= 12, "at least one transition per state");
        assert!(st.max_input_support <= 3, "support cap respected");
    }

    #[test]
    fn generated_machine_is_deterministic_and_reachable() {
        for seed in 0..8u64 {
            let spec = StgSpec {
                seed,
                states: 9,
                inputs: 4,
                outputs: 2,
                transitions: 30,
                ..StgSpec::new(format!("g{seed}"))
            };
            let stg = generate(&spec).expect("valid spec generates");
            assert!(stg.is_deterministic(), "seed {seed}");
            assert_eq!(
                reachable_states(&stg).len(),
                stg.num_states(),
                "seed {seed}: all states reachable"
            );
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = StgSpec::new("rep");
        assert_eq!(generate(&spec), generate(&spec));
        let other = StgSpec {
            seed: 2,
            ..StgSpec::new("rep")
        };
        assert_ne!(generate(&spec), generate(&other));
    }

    #[test]
    fn degenerate_specs_return_typed_errors() {
        let no_states = StgSpec {
            states: 0,
            ..StgSpec::new("z")
        };
        assert_eq!(generate(&no_states), Err(GenerateError::NoStates));

        let wide = StgSpec {
            inputs: 21,
            ..StgSpec::new("w")
        };
        assert_eq!(
            generate(&wide),
            Err(GenerateError::TooManyInputs { inputs: 21 })
        );

        let bad_idle = StgSpec {
            inputs: 4,
            idle_line: Some(4),
            ..StgSpec::new("i")
        };
        assert_eq!(
            generate(&bad_idle),
            Err(GenerateError::IdleLineOutOfRange {
                idle_line: 4,
                inputs: 4
            })
        );
    }

    #[test]
    fn zero_valued_knobs_are_byte_identical_to_defaults() {
        // The new shape knobs must not perturb historical machines: an
        // explicit 0.0 (or a non-finite value, which sanitizes to 0.0)
        // generates the exact same STG as the default spec.
        let base = generate(&StgSpec::new("knob")).expect("generates");
        for (density, skew) in [(0.0, 0.0), (f64::NAN, f64::NAN), (-0.5, -1.0)] {
            let knobbed = StgSpec {
                dont_care_density: density,
                fanout_skew: skew,
                ..StgSpec::new("knob")
            };
            assert_eq!(generate(&knobbed).expect("generates"), base);
        }
    }

    #[test]
    fn full_dont_care_density_collapses_to_minimal_cubes() {
        // At density 1.0 each state keeps only the cubes forced by its
        // spanning-tree fanout: n states plus at most n-1 hub splits,
        // far below the 40-transition budget the spec asks for.
        let spec = StgSpec {
            states: 6,
            inputs: 5,
            outputs: 2,
            transitions: 40,
            dont_care_density: 1.0,
            ..StgSpec::new("dc1")
        };
        let stg = generate(&spec).expect("generates");
        let t = stats(&stg).transitions;
        assert!(t <= 2 * 6 - 1, "got {t} transitions, tree bound is 11");
        // With an idle line: one extra quiescent self-loop per state.
        let idle = StgSpec {
            idle_line: Some(0),
            ..spec
        };
        let stg = generate(&idle).expect("generates");
        let t = stats(&stg).transitions;
        assert!(t <= 3 * 6 - 1, "got {t} transitions with idle loops");
    }

    #[test]
    fn dont_care_density_monotonically_thins_transitions() {
        let mut last = usize::MAX;
        for density in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let spec = StgSpec {
                states: 10,
                inputs: 6,
                outputs: 2,
                transitions: 80,
                dont_care_density: density,
                ..StgSpec::new("dcmono")
            };
            let stg = generate(&spec).expect("generates");
            let t = stats(&stg).transitions;
            assert!(
                t <= last,
                "density {density}: {t} transitions, previous {last}"
            );
            last = t;
        }
    }

    #[test]
    fn fanout_skew_concentrates_transitions_on_hub_states() {
        let flat_spec = StgSpec {
            states: 12,
            inputs: 8,
            outputs: 2,
            transitions: 96,
            ..StgSpec::new("skew")
        };
        let skewed_spec = StgSpec {
            fanout_skew: 1.5,
            ..flat_spec.clone()
        };
        let flat = generate(&flat_spec).expect("generates");
        let skewed = generate(&skewed_spec).expect("generates");
        let spread = |stg: &Stg| {
            let counts: Vec<usize> = stg
                .states()
                .map(|s| stg.transitions_from(s).count())
                .collect();
            let max = counts.iter().copied().max().unwrap_or(0);
            let min = counts.iter().copied().min().unwrap_or(0);
            max - min
        };
        assert!(
            spread(&skewed) > spread(&flat),
            "skewed fanout spread {} should exceed flat spread {}",
            spread(&skewed),
            spread(&flat)
        );
        // Skew redistributes the budget but keeps the machine sound.
        assert!(skewed.is_deterministic());
        assert_eq!(reachable_states(&skewed).len(), skewed.num_states());
    }

    #[test]
    fn moore_spec_generates_moore_machine() {
        let spec = StgSpec {
            moore: true,
            states: 6,
            inputs: 3,
            outputs: 4,
            transitions: 20,
            ..StgSpec::new("moore")
        };
        let stg = generate(&spec).expect("valid spec generates");
        assert_eq!(
            crate::machine::classify(&stg),
            crate::machine::FsmKind::Moore
        );
    }

    #[test]
    fn self_loops_hold_their_output() {
        let spec = StgSpec {
            self_loop_bias: 0.8,
            states: 8,
            inputs: 4,
            outputs: 2,
            transitions: 40,
            ..StgSpec::new("idle")
        };
        let stg = generate(&spec).expect("valid spec generates");
        for s in stg.states() {
            let loops: Vec<_> = stg.transitions_from(s).filter(|t| t.to == s).collect();
            for w in loops.windows(2) {
                assert_eq!(
                    w[0].output, w[1].output,
                    "all self-loops of a state assert the same hold output"
                );
            }
        }
    }

    #[test]
    fn generated_machines_are_complete_over_support() {
        let spec = StgSpec {
            states: 5,
            inputs: 3,
            outputs: 1,
            transitions: 15,
            max_support: None,
            ..StgSpec::new("complete")
        };
        let stg = generate(&spec).expect("valid spec generates");
        assert!(stg.is_complete());
    }
}
