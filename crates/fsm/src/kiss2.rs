//! KISS2 reader and writer.
//!
//! KISS2 is the textual STG format used by the MCNC LOGIC SYNTHESIS '91 FSM
//! benchmarks and consumed by SIS — the entry point of the paper's
//! experimental flow (Fig. 6). A file looks like:
//!
//! ```text
//! .i 1
//! .o 1
//! .p 8
//! .s 4
//! .r A
//! 0 A B 0
//! 1 A A 0
//! ...
//! .e
//! ```
//!
//! Each transition line is `input current-state next-state output`, with
//! `-` marking don't-care bits.

use crate::stg::{Stg, StgBuilder, StgError};
use std::fmt;

/// Errors produced while parsing KISS2 text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseKiss2Error {
    /// A line could not be split into the expected fields.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
    /// The declared counts (`.i`, `.o`, `.p`, `.s`) disagree with the body.
    CountMismatch {
        /// Which declaration disagreed.
        what: &'static str,
        /// Declared value.
        declared: usize,
        /// Observed value.
        observed: usize,
    },
    /// A transition line's input or output field width disagrees with the
    /// declared `.i`/`.o` count.
    WidthMismatch {
        /// 1-based line number of the offending transition.
        line: usize,
        /// Which field disagreed: `"input"` or `"output"`.
        field: &'static str,
        /// Width declared by `.i`/`.o`.
        declared: usize,
        /// Width found on the transition line.
        found: usize,
    },
    /// The `.r` reset state never appears in the body.
    UnknownReset(String),
    /// Structural validation failed after parsing.
    Invalid(StgError),
}

impl fmt::Display for ParseKiss2Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseKiss2Error::Malformed { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseKiss2Error::CountMismatch {
                what,
                declared,
                observed,
            } => write!(f, "{what} declared {declared} but body has {observed}"),
            ParseKiss2Error::WidthMismatch {
                line,
                field,
                declared,
                found,
            } => write!(
                f,
                "line {line}: {field} field is {found} bits wide, declaration says {declared}"
            ),
            ParseKiss2Error::UnknownReset(s) => write!(f, "reset state {s:?} not found"),
            ParseKiss2Error::Invalid(e) => write!(f, "invalid machine: {e}"),
        }
    }
}

impl std::error::Error for ParseKiss2Error {}

impl From<StgError> for ParseKiss2Error {
    fn from(e: StgError) -> Self {
        ParseKiss2Error::Invalid(e)
    }
}

/// Parses KISS2 text into an [`Stg`].
///
/// The machine name is taken from `name` (KISS2 files carry no name).
/// Declared `.p`/`.s` counts are checked against the body; `.i`/`.o` are
/// mandatory. A missing `.r` defaults to the source state of the first
/// transition, mirroring SIS behaviour.
///
/// # Errors
///
/// Returns [`ParseKiss2Error`] on malformed text or inconsistent counts.
///
/// # Examples
///
/// ```
/// let text = "\
/// .i 1
/// .o 1
/// .s 2
/// .p 2
/// .r off
/// 1 off on 0
/// - on off 1
/// .e
/// ";
/// let stg = fsm_model::kiss2::parse(text, "toggle")?;
/// assert_eq!(stg.num_states(), 2);
/// assert_eq!(stg.state_name(stg.reset_state()), "off");
/// # Ok::<(), fsm_model::kiss2::ParseKiss2Error>(())
/// ```
pub fn parse(text: &str, name: &str) -> Result<Stg, ParseKiss2Error> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut declared_products: Option<usize> = None;
    let mut declared_states: Option<usize> = None;
    let mut reset_name: Option<String> = None;
    let mut body: Vec<(usize, [String; 4])> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut fields = line.split_whitespace();
        let first = fields.next().expect("non-empty line");
        if let Some(directive) = first.strip_prefix('.') {
            let arg = fields.next();
            let parse_count = |what: &'static str| -> Result<usize, ParseKiss2Error> {
                arg.and_then(|a| a.parse().ok())
                    .ok_or_else(|| ParseKiss2Error::Malformed {
                        line: lineno,
                        reason: format!(".{what} needs a numeric argument"),
                    })
            };
            match directive {
                "i" => num_inputs = Some(parse_count("i")?),
                "o" => num_outputs = Some(parse_count("o")?),
                "p" => declared_products = Some(parse_count("p")?),
                "s" => declared_states = Some(parse_count("s")?),
                "r" => {
                    reset_name = Some(
                        arg.ok_or_else(|| ParseKiss2Error::Malformed {
                            line: lineno,
                            reason: ".r needs a state name".into(),
                        })?
                        .to_string(),
                    )
                }
                // Port-name lists from MCNC files: names are irrelevant
                // to the semantics, but the files must parse.
                "ilb" | "ob" => {}
                "e" | "end" => break,
                other => {
                    return Err(ParseKiss2Error::Malformed {
                        line: lineno,
                        reason: format!("unknown directive .{other}"),
                    })
                }
            }
        } else {
            let f: Vec<&str> = std::iter::once(first).chain(fields).collect();
            if f.len() != 4 {
                return Err(ParseKiss2Error::Malformed {
                    line: lineno,
                    reason: format!("expected 4 fields, found {}", f.len()),
                });
            }
            body.push((
                lineno,
                [
                    f[0].to_string(),
                    f[1].to_string(),
                    f[2].to_string(),
                    f[3].to_string(),
                ],
            ));
        }
    }

    let num_inputs = num_inputs.ok_or(ParseKiss2Error::Malformed {
        line: 0,
        reason: "missing .i declaration".into(),
    })?;
    let num_outputs = num_outputs.ok_or(ParseKiss2Error::Malformed {
        line: 0,
        reason: "missing .o declaration".into(),
    })?;

    if let Some(r) = &reset_name {
        if !body.iter().any(|(_, f)| &f[1] == r || &f[2] == r) {
            return Err(ParseKiss2Error::UnknownReset(r.clone()));
        }
    }

    let mut builder = StgBuilder::new(name, num_inputs, num_outputs);
    for (lineno, [input, from, to, output]) in &body {
        if input.len() != num_inputs {
            return Err(ParseKiss2Error::WidthMismatch {
                line: *lineno,
                field: "input",
                declared: num_inputs,
                found: input.len(),
            });
        }
        if output.len() != num_outputs {
            return Err(ParseKiss2Error::WidthMismatch {
                line: *lineno,
                field: "output",
                declared: num_outputs,
                found: output.len(),
            });
        }
        for (field, what) in [(input, "input"), (output, "output")] {
            if let Some(bad) = field.chars().find(|c| !matches!(c, '0' | '1' | '-')) {
                return Err(ParseKiss2Error::Malformed {
                    line: *lineno,
                    reason: format!("invalid {what} character {bad:?}"),
                });
            }
        }
        let from = builder.state(from.clone());
        let to = builder.state(to.clone());
        builder.transition(from, input, to, output);
    }

    if let Some(r) = &reset_name {
        // The reset state may not have been the first mentioned; register it
        // (it normally already exists) and mark it.
        let id = builder.state(r.clone());
        builder.reset(id);
    }

    let stg = builder.build()?;

    if let Some(p) = declared_products {
        if p != stg.transitions().len() {
            return Err(ParseKiss2Error::CountMismatch {
                what: ".p",
                declared: p,
                observed: stg.transitions().len(),
            });
        }
    }
    if let Some(s) = declared_states {
        if s != stg.num_states() {
            return Err(ParseKiss2Error::CountMismatch {
                what: ".s",
                declared: s,
                observed: stg.num_states(),
            });
        }
    }
    Ok(stg)
}

/// Serializes an [`Stg`] as KISS2 text.
///
/// The output round-trips through [`parse`].
#[must_use]
pub fn write(stg: &Stg) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".i {}", stg.num_inputs());
    let _ = writeln!(s, ".o {}", stg.num_outputs());
    let _ = writeln!(s, ".p {}", stg.transitions().len());
    let _ = writeln!(s, ".s {}", stg.num_states());
    let _ = writeln!(s, ".r {}", stg.state_name(stg.reset_state()));
    for t in stg.transitions() {
        let _ = writeln!(
            s,
            "{} {} {} {}",
            t.input,
            stg.state_name(t.from),
            stg.state_name(t.to),
            t.output
        );
    }
    s.push_str(".e\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const LION: &str = "\
# lion benchmark (toy version)
.i 2
.o 1
.s 4
.p 11
.r st0
-0 st0 st0 0
11 st0 st0 0
01 st0 st1 0   # comment after line
0- st1 st1 1
11 st1 st1 1
10 st1 st2 1
1- st2 st2 1
00 st2 st2 1
01 st2 st3 1
-1 st3 st3 1
00 st3 st3 1
.e
";

    #[test]
    fn parses_realistic_file() {
        let stg = parse(LION, "lion").unwrap();
        assert_eq!(stg.num_inputs(), 2);
        assert_eq!(stg.num_outputs(), 1);
        assert_eq!(stg.num_states(), 4);
        assert_eq!(stg.transitions().len(), 11);
        assert_eq!(stg.state_name(stg.reset_state()), "st0");
    }

    #[test]
    fn roundtrip_preserves_machine() {
        let stg = parse(LION, "lion").unwrap();
        let text = write(&stg);
        let again = parse(&text, "lion").unwrap();
        assert_eq!(stg, again);
    }

    #[test]
    fn default_reset_is_first_source_state() {
        let text = ".i 1\n.o 1\n1 b a 0\n0 a a 1\n.e\n";
        let stg = parse(text, "t").unwrap();
        assert_eq!(stg.state_name(stg.reset_state()), "b");
    }

    #[test]
    fn count_mismatch_detected() {
        let text = ".i 1\n.o 1\n.p 5\n1 a a 0\n.e\n";
        let err = parse(text, "t").unwrap_err();
        assert!(matches!(
            err,
            ParseKiss2Error::CountMismatch { what: ".p", .. }
        ));
    }

    #[test]
    fn bad_input_width_is_typed() {
        let text = ".i 2\n.o 1\n1 a a 0\n.e\n";
        let err = parse(text, "t").unwrap_err();
        assert_eq!(
            err,
            ParseKiss2Error::WidthMismatch {
                line: 3,
                field: "input",
                declared: 2,
                found: 1,
            }
        );
    }

    #[test]
    fn bad_output_width_is_typed() {
        let text = ".i 1\n.o 2\n1 a a 00\n0 a b 0\n.e\n";
        let err = parse(text, "t").unwrap_err();
        assert_eq!(
            err,
            ParseKiss2Error::WidthMismatch {
                line: 4,
                field: "output",
                declared: 2,
                found: 1,
            }
        );
    }

    #[test]
    fn missing_declarations_rejected() {
        assert!(parse("1 a a 0\n", "t").is_err());
        assert!(parse(".i 1\n1 a a 0\n", "t").is_err());
    }

    #[test]
    fn ilb_and_ob_name_lists_are_accepted() {
        let text = ".i 2\n.o 1\n.ilb req grant\n.ob busy\n.s 1\n.p 1\n-- a a 1\n.e\n";
        let stg = parse(text, "named").unwrap();
        assert_eq!(stg.num_inputs(), 2);
        assert_eq!(stg.num_states(), 1);
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse(".i 1\n.o 1\n.q 3\n1 a a 0\n", "t").unwrap_err();
        assert!(matches!(err, ParseKiss2Error::Malformed { .. }));
    }
}
