//! Finite-state-machine model for the DATE 2004 "FSMs in embedded memory
//! blocks" reproduction.
//!
//! This crate provides the FSM substrate used throughout the workspace:
//!
//! * [`stg`] — the state-transition-graph representation (the paper's
//!   six-tuple *(I, O, S, r0, δ, Y)*) with deterministic completion
//!   semantics;
//! * [`pattern`] — ternary `0/1/-` patterns for transition inputs/outputs;
//! * [`kiss2`] — the MCNC/SIS interchange format;
//! * [`encoding`] — binary / gray / one-hot state encodings;
//! * [`machine`] — Mealy/Moore classification and the Mealy→Moore
//!   transformation of Sec. 4.2;
//! * [`simulate`] — the reference simulator every hardware mapping is
//!   verified against;
//! * [`analysis`] — reachability, per-state input support (column
//!   compaction), idle-condition extraction (clock control, Sec. 6);
//! * [`dot`] — Graphviz export of state diagrams (Fig. 2a style);
//! * [`minimize`] — state minimization;
//! * [`generate`] / [`benchmarks`] — seeded synthetic machines matching the
//!   published signatures of the paper's MCNC/PREP benchmark suite.
//!
//! # Examples
//!
//! Parse a KISS2 machine and simulate it:
//!
//! ```
//! use fsm_model::{kiss2, simulate::StgSimulator};
//!
//! let text = "\
//! .i 1
//! .o 1
//! .s 2
//! .p 2
//! .r off
//! 1 off on 1
//! - on off 0
//! .e
//! ";
//! let stg = kiss2::parse(text, "pulse")?;
//! let mut sim = StgSimulator::new(&stg);
//! assert_eq!(sim.clock(&[true]), &[true]);
//! assert_eq!(sim.clock(&[true]), &[false]);
//! # Ok::<(), fsm_model::kiss2::ParseKiss2Error>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod benchmarks;
pub mod corpus;
pub mod dot;
pub mod encoding;
pub mod generate;
pub mod kiss2;
pub mod machine;
pub mod minimize;
pub mod pattern;
pub mod simulate;
pub mod stg;

pub use encoding::{EncodingStyle, StateEncoding};
pub use machine::FsmKind;
pub use pattern::{Pattern, Trit};
pub use stg::{StateId, Stg, StgBuilder, Transition};
