//! Mealy / Moore classification and the Mealy→Moore transformation.
//!
//! The paper (Sec. 4.2) notes that when a Mealy machine's outputs must be
//! realized by LUTs driven only by the state bits (Fig. 3), the machine is
//! first transformed into a Moore machine, citing Kohavi. [`to_moore`]
//! implements the classical construction: each reachable (state, output)
//! pair becomes a Moore state whose output is the output produced *on entry*.

use crate::pattern::Pattern;
use crate::stg::{StateId, Stg, StgBuilder, StgError};
use std::collections::HashMap;

/// Whether an FSM's outputs depend on inputs (Mealy) or on state alone
/// (Moore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsmKind {
    /// Outputs are a function of current state only.
    Moore,
    /// Outputs depend on current state *and* inputs.
    Mealy,
}

impl std::fmt::Display for FsmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsmKind::Moore => write!(f, "Moore"),
            FsmKind::Mealy => write!(f, "Mealy"),
        }
    }
}

/// Classifies a machine by inspecting its transitions.
///
/// A machine is Moore if, for every state, all *incoming* transitions agree
/// on the (zero-resolved) output. This is the "outputs associated with
/// states" reading used when outputs are regenerated from state bits.
#[must_use]
pub fn classify(stg: &Stg) -> FsmKind {
    if moore_outputs(stg).is_some() {
        FsmKind::Moore
    } else {
        FsmKind::Mealy
    }
}

/// If the machine is Moore, returns the per-state output vector (the output
/// asserted by every transition entering the state, zero-resolved).
///
/// States with no incoming transitions (only possible for an unreachable or
/// reset-only state) are assigned all-zero outputs, consistent with the
/// completion rule.
#[must_use]
pub fn moore_outputs(stg: &Stg) -> Option<Vec<Vec<bool>>> {
    let mut outs: Vec<Option<Vec<bool>>> = vec![None; stg.num_states()];
    for t in stg.transitions() {
        let o = t.output.resolve_zero();
        match &outs[t.to.index()] {
            None => outs[t.to.index()] = Some(o),
            Some(existing) => {
                if *existing != o {
                    return None;
                }
            }
        }
    }
    Some(
        outs.into_iter()
            .map(|o| o.unwrap_or_else(|| vec![false; stg.num_outputs()]))
            .collect(),
    )
}

/// Transforms a (possibly Mealy) machine into an equivalent Moore machine.
///
/// Each reachable pair *(state, entry-output)* of the source machine becomes
/// one Moore state. The Moore machine's output on a given cycle equals the
/// Mealy machine's output of the *previous* transition, which is exactly the
/// one-cycle-latched behaviour of an EMB implementation whose outputs are
/// regenerated from state bits (paper Fig. 3).
///
/// The reset state pairs the original reset state with the all-zero output
/// (matching the cleared output latches after configuration, Sec. 4.2).
///
/// # Errors
///
/// Propagates [`StgError`] if the constructed machine fails validation
/// (cannot happen for valid inputs, but the contract is explicit).
///
/// # Examples
///
/// ```
/// use fsm_model::stg::StgBuilder;
/// use fsm_model::machine::{classify, to_moore, FsmKind};
///
/// let mut b = StgBuilder::new("mealy", 1, 1);
/// let a = b.state("A");
/// b.transition(a, "1", a, "1");
/// b.transition(a, "0", a, "0");
/// let mealy = b.build()?;
/// assert_eq!(classify(&mealy), FsmKind::Mealy);
/// let moore = to_moore(&mealy)?;
/// assert_eq!(classify(&moore), FsmKind::Moore);
/// # Ok::<(), fsm_model::stg::StgError>(())
/// ```
pub fn to_moore(stg: &Stg) -> Result<Stg, StgError> {
    // Key: (original state, entry output bits). Value: new state id assigned
    // in discovery order so the reset pair is state 0.
    let mut index: HashMap<(StateId, Vec<bool>), usize> = HashMap::new();
    let mut order: Vec<(StateId, Vec<bool>)> = Vec::new();
    let zero = vec![false; stg.num_outputs()];
    let reset_key = (stg.reset_state(), zero.clone());
    index.insert(reset_key.clone(), 0);
    order.push(reset_key);

    // BFS over the product construction.
    let mut frontier = vec![0usize];
    let mut edges: Vec<(usize, Pattern, usize)> = Vec::new();
    while let Some(cur) = frontier.pop() {
        let (orig, _) = order[cur].clone();
        for t in stg.transitions_from(orig) {
            let out = t.output.resolve_zero();
            let key = (t.to, out);
            let next = *index.entry(key.clone()).or_insert_with(|| {
                order.push(key);
                frontier.push(order.len() - 1);
                order.len() - 1
            });
            edges.push((cur, t.input.clone(), next));
        }
    }

    let mut b = StgBuilder::new(
        format!("{}_moore", stg.name()),
        stg.num_inputs(),
        stg.num_outputs(),
    );
    let ids: Vec<StateId> = order
        .iter()
        .map(|(s, o)| {
            let tag: String = o.iter().map(|&bit| if bit { '1' } else { '0' }).collect();
            b.state(format!("{}_{}", stg.state_name(*s), tag))
        })
        .collect();
    b.reset(ids[0]);
    for (from, input, to) in edges {
        let out = Pattern::from_bits(&order[to].1);
        b.transition_pat(ids[from], input, ids[to], out);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn mealy_detector() -> Stg {
        // 0101 detector from the paper's Fig. 2 (Mealy: output 1 only on the
        // final transition).
        let mut b = StgBuilder::new("seq0101", 1, 1);
        let a = b.state("A");
        let s_b = b.state("B");
        let c = b.state("C");
        let d = b.state("D");
        b.transition(a, "0", s_b, "0");
        b.transition(a, "1", a, "0");
        b.transition(s_b, "1", c, "0");
        b.transition(s_b, "0", s_b, "0");
        b.transition(c, "0", d, "0");
        b.transition(c, "1", a, "0");
        b.transition(d, "1", c, "1");
        b.transition(d, "0", s_b, "0");
        b.build().unwrap()
    }

    #[test]
    fn classify_detects_mealy() {
        assert_eq!(classify(&mealy_detector()), FsmKind::Mealy);
    }

    #[test]
    fn classify_detects_moore() {
        let mut b = StgBuilder::new("moore", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "1", c, "1");
        b.transition(a, "0", a, "0");
        b.transition(c, "-", a, "0");
        let stg = b.build().unwrap();
        assert_eq!(classify(&stg), FsmKind::Moore);
        let outs = moore_outputs(&stg).unwrap();
        assert_eq!(outs[0], vec![false]);
        assert_eq!(outs[1], vec![true]);
    }

    #[test]
    fn to_moore_produces_moore_machine() {
        let mealy = mealy_detector();
        let moore = to_moore(&mealy).unwrap();
        assert_eq!(classify(&moore), FsmKind::Moore);
        // 0101 detector: C is entered with output 0 (from B) and with output
        // 1 (from D), so it splits; expect 5 states.
        assert_eq!(moore.num_states(), 5);
    }

    #[test]
    fn to_moore_output_is_latched_mealy_output() {
        let mealy = mealy_detector();
        let moore = to_moore(&mealy).unwrap();
        // Drive both machines with 0101 0101; the Moore output at cycle t+1
        // must equal the Mealy output at cycle t.
        let seq = [false, true, false, true, false, true, false, true];
        let mut ms = mealy.reset_state();
        let mut os = moore.reset_state();
        let mut prev_mealy_out = vec![false];
        for &bit in &seq {
            let (mn, mo) = mealy.step(ms, &[bit]);
            let (on, oo) = moore.step(os, &[bit]);
            // Moore machine asserts, while *in* a state, the output that was
            // produced on entry. stg::step returns the transition output,
            // i.e. the output that will be latched: compare next-cycle
            // visible values directly.
            assert_eq!(oo, mo, "transition outputs must agree");
            let _ = &prev_mealy_out;
            prev_mealy_out = mo;
            ms = mn;
            os = on;
        }
    }

    #[test]
    fn moore_of_moore_is_isomorphic_in_size() {
        let mut b = StgBuilder::new("m", 1, 2);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "1", c, "01");
        b.transition(a, "0", a, "00");
        b.transition(c, "-", a, "00");
        let moore = b.build().unwrap();
        let again = to_moore(&moore).unwrap();
        // A is entered with 00 only; B with 01 only; reset pairs A with 00.
        assert_eq!(again.num_states(), moore.num_states());
    }
}
