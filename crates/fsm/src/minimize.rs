//! State minimization by partition refinement.
//!
//! Works on the *completed* machine semantics ([`TransitionTable`]): two
//! states are equivalent iff for every input minterm they produce the same
//! outputs and transition to equivalent states. This is Moore/Hopcroft-style
//! refinement specialized to the dense table; FSM benchmarks are small, so
//! the simple `O(n^2 · 2^i)` refinement loop is more than fast enough.
//!
//! [`TransitionTable`]: crate::stg::TransitionTable

use crate::pattern::{index_to_bits, Pattern};
use crate::stg::{StateId, Stg, StgBuilder};
use std::collections::HashMap;

/// Result of minimization: the reduced machine plus the state mapping.
#[derive(Debug, Clone)]
pub struct Minimized {
    /// The reduced machine (dense transitions: one per state per input class).
    pub stg: Stg,
    /// For each original state, the class (new state) it collapsed into.
    pub class_of: Vec<StateId>,
}

/// Minimizes the number of states of `stg` under completed-machine
/// semantics.
///
/// The produced machine has one transition per (state, merged-input-cube).
/// Input cubes are re-derived by merging minterms with identical behaviour
/// into maximal prefix cubes, which keeps the transition list readable; it
/// is not guaranteed to be a minimum cover (logic minimization downstream
/// takes care of that).
///
/// # Errors
///
/// Fails with the dense-expansion error if the machine has more inputs than
/// [`crate::stg::TransitionTable::MAX_INPUTS`].
pub fn minimize(stg: &Stg) -> Result<Minimized, String> {
    let table = stg.to_table()?;
    let n = stg.num_states();
    let num_minterms = 1usize << stg.num_inputs();

    // Initial partition: by full output row.
    let mut class: Vec<usize> = {
        let mut index: HashMap<Vec<u64>, usize> = HashMap::new();
        (0..n)
            .map(|s| {
                let row: Vec<u64> = (0..num_minterms)
                    .map(|m| table.entry(StateId(s as u32), m).1)
                    .collect();
                let next = index.len();
                *index.entry(row).or_insert(next)
            })
            .collect()
    };

    // Refine until stable: signature = (class, per-minterm next-state class).
    loop {
        let mut index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let next_class: Vec<usize> = (0..n)
            .map(|s| {
                let sig: Vec<usize> = (0..num_minterms)
                    .map(|m| class[table.entry(StateId(s as u32), m).0.index()])
                    .collect();
                let key = (class[s], sig);
                let next = index.len();
                *index.entry(key).or_insert(next)
            })
            .collect();
        let stable = next_class == class;
        class = next_class;
        if stable {
            break;
        }
    }

    // Renumber classes so the reset state's class is 0 (required by the EMB
    // mapping convention) and classes otherwise appear in first-member order.
    let num_classes = class.iter().max().map_or(0, |m| m + 1);
    let mut renumber: Vec<Option<usize>> = vec![None; num_classes];
    renumber[class[stg.reset_state().index()]] = Some(0);
    let mut next_id = 1usize;
    for s in 0..n {
        if renumber[class[s]].is_none() {
            renumber[class[s]] = Some(next_id);
            next_id += 1;
        }
    }
    let class: Vec<usize> = class
        .iter()
        .map(|&c| renumber[c].expect("all classes renumbered"))
        .collect();
    let num_classes = next_id;

    // Representative original state per class.
    let mut rep: Vec<Option<usize>> = vec![None; num_classes];
    for s in 0..n {
        if rep[class[s]].is_none() {
            rep[class[s]] = Some(s);
        }
    }

    let mut b = StgBuilder::new(
        format!("{}_min", stg.name()),
        stg.num_inputs(),
        stg.num_outputs(),
    );
    let ids: Vec<StateId> = (0..num_classes)
        .map(|c| {
            let r = rep[c].expect("class has a representative");
            b.state(stg.state_name(StateId(r as u32)).to_string())
        })
        .collect();
    b.reset(ids[0]);

    for c in 0..num_classes {
        let r = StateId(rep[c].expect("representative") as u32);
        // Group minterms by (next-class, outputs), then merge into cubes.
        let mut groups: HashMap<(usize, u64), Vec<usize>> = HashMap::new();
        for m in 0..num_minterms {
            let (next, out) = table.entry(r, m);
            groups
                .entry((class[next.index()], out))
                .or_default()
                .push(m);
        }
        let mut keys: Vec<(usize, u64)> = groups.keys().copied().collect();
        keys.sort_unstable();
        for (next_c, out) in keys {
            let minterms = &groups[&(next_c, out)];
            for cube in merge_minterms(minterms, stg.num_inputs()) {
                let out_bits = index_to_bits(out, stg.num_outputs());
                b.transition_pat(ids[c], cube, ids[next_c], Pattern::from_bits(&out_bits));
            }
        }
    }

    Ok(Minimized {
        stg: b.build().map_err(|e| e.to_string())?,
        class_of: class.iter().map(|&c| ids[c]).collect(),
    })
}

/// Greedy merge of a minterm set into ternary cubes (pairwise combining of
/// cubes that differ in exactly one specified bit, iterated to fixpoint —
/// the Quine–McCluskey combining step without the covering step).
fn merge_minterms(minterms: &[usize], width: usize) -> Vec<Pattern> {
    use crate::pattern::Trit;
    let mut cubes: Vec<Vec<Trit>> = minterms
        .iter()
        .map(|&m| {
            (0..width)
                .map(|b| Trit::from_bit((m >> b) & 1 == 1))
                .collect()
        })
        .collect();
    loop {
        let mut merged = false;
        let mut out: Vec<Vec<Trit>> = Vec::new();
        let mut used = vec![false; cubes.len()];
        for i in 0..cubes.len() {
            if used[i] {
                continue;
            }
            let mut found = false;
            for j in (i + 1)..cubes.len() {
                if used[j] {
                    continue;
                }
                if let Some(m) = combine(&cubes[i], &cubes[j]) {
                    out.push(m);
                    used[i] = true;
                    used[j] = true;
                    merged = true;
                    found = true;
                    break;
                }
            }
            if !found && !used[i] {
                out.push(cubes[i].clone());
            }
        }
        out.sort();
        out.dedup();
        cubes = out;
        if !merged {
            break;
        }
    }
    cubes.into_iter().map(Pattern::new).collect()
}

fn combine(
    a: &[crate::pattern::Trit],
    b: &[crate::pattern::Trit],
) -> Option<Vec<crate::pattern::Trit>> {
    use crate::pattern::Trit;
    let mut diff = None;
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x != y {
            match (x, y) {
                (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero) => {
                    if diff.is_some() {
                        return None;
                    }
                    diff = Some(i);
                }
                _ => return None, // don't-care mismatch: not adjacent
            }
        }
    }
    diff.map(|i| {
        let mut m = a.to_vec();
        m[i] = Trit::DontCare;
        m
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::StgSimulator;
    use crate::stg::StgBuilder;

    /// Two copies of the same toggle machine glued together: states C/D are
    /// redundant with A/B.
    fn redundant() -> Stg {
        let mut b = StgBuilder::new("red", 1, 1);
        let a = b.state("A");
        let s_b = b.state("B");
        let c = b.state("C");
        let d = b.state("D");
        b.transition(a, "1", s_b, "1");
        b.transition(a, "0", c, "0");
        b.transition(s_b, "1", a, "0");
        b.transition(s_b, "0", d, "1");
        b.transition(c, "1", d, "1");
        b.transition(c, "0", a, "0");
        b.transition(d, "1", c, "0");
        b.transition(d, "0", s_b, "1");
        b.build().unwrap()
    }

    #[test]
    fn merges_equivalent_states() {
        let stg = redundant();
        let min = minimize(&stg).unwrap();
        assert_eq!(min.stg.num_states(), 2, "A≡C and B≡D must merge");
        assert_eq!(min.class_of[0], min.class_of[2]);
        assert_eq!(min.class_of[1], min.class_of[3]);
    }

    #[test]
    fn minimized_machine_is_equivalent() {
        let stg = redundant();
        let min = minimize(&stg).unwrap().stg;
        let mut sim_a = StgSimulator::new(&stg);
        let mut sim_b = StgSimulator::new(&min);
        // Deterministic pseudo-random input stream.
        let mut x: u64 = 0x243f_6a88_85a3_08d3;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let bit = (x >> 62) & 1 == 1;
            let oa = sim_a.clock(&[bit]).to_vec();
            let ob = sim_b.clock(&[bit]).to_vec();
            assert_eq!(oa, ob);
        }
    }

    #[test]
    fn already_minimal_machine_is_unchanged_in_size() {
        let mut b = StgBuilder::new("min", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "-", c, "1");
        b.transition(c, "-", a, "0");
        let stg = b.build().unwrap();
        let min = minimize(&stg).unwrap();
        assert_eq!(min.stg.num_states(), 2);
    }

    #[test]
    fn reset_class_is_state_zero() {
        let stg = redundant();
        let min = minimize(&stg).unwrap();
        assert_eq!(
            min.class_of[stg.reset_state().index()],
            min.stg.reset_state()
        );
        assert_eq!(min.stg.reset_state(), StateId(0));
    }

    #[test]
    fn merge_minterms_produces_covering_cubes() {
        // {0,1,2,3} over 2 bits merges to a single "--".
        let cubes = merge_minterms(&[0, 1, 2, 3], 2);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].to_string(), "--");
        // {0,3} cannot merge.
        let cubes = merge_minterms(&[0, 3], 2);
        assert_eq!(cubes.len(), 2);
    }
}
