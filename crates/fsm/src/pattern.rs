//! Ternary bit patterns used for FSM transition inputs and outputs.
//!
//! KISS2 state-transition tables describe transition inputs and outputs as
//! strings over `{0, 1, -}`, where `-` is a *don't-care*: on the input side it
//! means "this transition fires regardless of that input bit", on the output
//! side it means "any value is acceptable for that output bit".
//!
//! [`Pattern`] is deliberately a simple `Vec<Trit>`: FSM benchmarks have at
//! most a few dozen bits, and clarity beats bit-packing here. The `logic`
//! crate has a bit-packed [`Cube`] for the performance-sensitive minimization
//! loops; conversions live there.
//!
//! [`Cube`]: https://docs.rs/logic-synth

use std::fmt;
use std::str::FromStr;

/// A single ternary digit: `0`, `1` or don't-care (`-`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Trit {
    /// Logic zero.
    Zero,
    /// Logic one.
    One,
    /// Don't-care: matches (input side) or permits (output side) any value.
    DontCare,
}

impl Trit {
    /// Returns `true` if a concrete bit value satisfies this trit.
    #[must_use]
    pub fn matches(self, bit: bool) -> bool {
        match self {
            Trit::Zero => !bit,
            Trit::One => bit,
            Trit::DontCare => true,
        }
    }

    /// The concrete value of a specified trit, or `None` for a don't-care.
    #[must_use]
    pub fn value(self) -> Option<bool> {
        match self {
            Trit::Zero => Some(false),
            Trit::One => Some(true),
            Trit::DontCare => None,
        }
    }

    /// Converts a concrete bit into the trit that specifies it.
    #[must_use]
    pub fn from_bit(bit: bool) -> Self {
        if bit {
            Trit::One
        } else {
            Trit::Zero
        }
    }

    /// The character used for this trit in KISS2 files.
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Trit::Zero => '0',
            Trit::One => '1',
            Trit::DontCare => '-',
        }
    }
}

/// Error returned when parsing a [`Pattern`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePatternError {
    /// The offending character.
    pub ch: char,
    /// Byte offset of the offending character.
    pub pos: usize,
}

impl fmt::Display for ParsePatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pattern character {:?} at position {} (expected 0, 1 or -)",
            self.ch, self.pos
        )
    }
}

impl std::error::Error for ParsePatternError {}

/// A fixed-width ternary pattern such as `10-1-`.
///
/// # Examples
///
/// ```
/// use fsm_model::pattern::Pattern;
///
/// let p: Pattern = "1-0".parse()?;
/// assert!(p.matches(&[true, false, false]));
/// assert!(p.matches(&[true, true, false]));
/// assert!(!p.matches(&[false, true, false]));
/// # Ok::<(), fsm_model::pattern::ParsePatternError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Pattern {
    trits: Vec<Trit>,
}

impl Pattern {
    /// Creates a pattern from explicit trits.
    #[must_use]
    pub fn new(trits: Vec<Trit>) -> Self {
        Pattern { trits }
    }

    /// A pattern of `width` don't-cares (matches everything).
    #[must_use]
    pub fn all_dont_care(width: usize) -> Self {
        Pattern {
            trits: vec![Trit::DontCare; width],
        }
    }

    /// A fully specified pattern equal to the given bits.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        Pattern {
            trits: bits.iter().map(|&b| Trit::from_bit(b)).collect(),
        }
    }

    /// Number of trits in the pattern.
    #[must_use]
    pub fn width(&self) -> usize {
        self.trits.len()
    }

    /// Returns `true` if the pattern has zero width.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trits.is_empty()
    }

    /// The trits of the pattern, most significant first (KISS2 order).
    #[must_use]
    pub fn trits(&self) -> &[Trit] {
        &self.trits
    }

    /// The trit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.width()`.
    #[must_use]
    pub fn trit(&self, idx: usize) -> Trit {
        self.trits[idx]
    }

    /// Replaces the trit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= self.width()`.
    pub fn set(&mut self, idx: usize, t: Trit) {
        self.trits[idx] = t;
    }

    /// Returns `true` if the concrete bit vector satisfies every trit.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != self.width()`.
    #[must_use]
    pub fn matches(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.width(), "pattern width mismatch");
        self.trits.iter().zip(bits).all(|(t, &b)| t.matches(b))
    }

    /// Returns `true` if some concrete vector satisfies both patterns.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn intersects(&self, other: &Pattern) -> bool {
        assert_eq!(self.width(), other.width(), "pattern width mismatch");
        self.trits
            .iter()
            .zip(&other.trits)
            .all(|(a, b)| !matches!((a, b), (Trit::Zero, Trit::One) | (Trit::One, Trit::Zero)))
    }

    /// Returns `true` if every vector matching `other` also matches `self`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn covers(&self, other: &Pattern) -> bool {
        assert_eq!(self.width(), other.width(), "pattern width mismatch");
        self.trits
            .iter()
            .zip(&other.trits)
            .all(|(a, b)| matches!(a, Trit::DontCare) || a == b)
    }

    /// Indices of the specified (non-don't-care) trits.
    pub fn specified_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.trits
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t, Trit::DontCare))
            .map(|(i, _)| i)
    }

    /// Number of specified (non-don't-care) trits.
    #[must_use]
    pub fn num_specified(&self) -> usize {
        self.specified_positions().count()
    }

    /// Number of concrete vectors matching this pattern (`2^dont_cares`).
    ///
    /// Saturates at `u64::MAX` for absurd widths.
    #[must_use]
    pub fn num_minterms(&self) -> u64 {
        let dc = (self.width() - self.num_specified()) as u32;
        1u64.checked_shl(dc).unwrap_or(u64::MAX)
    }

    /// Iterates over every concrete bit vector matched by this pattern.
    ///
    /// The don't-care positions are enumerated in binary counting order.
    pub fn minterms(&self) -> Minterms<'_> {
        Minterms {
            pattern: self,
            dc_positions: self
                .trits
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, Trit::DontCare))
                .map(|(i, _)| i)
                .collect(),
            counter: 0,
            done: false,
        }
    }

    /// Resolves every don't-care to `0`, yielding a concrete vector.
    #[must_use]
    pub fn resolve_zero(&self) -> Vec<bool> {
        self.trits
            .iter()
            .map(|t| t.value().unwrap_or(false))
            .collect()
    }

    /// Restricts this pattern to the given positions, in the given order.
    ///
    /// Used by column compaction to pull out only the input columns a state
    /// actually reads.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn project(&self, positions: &[usize]) -> Pattern {
        Pattern {
            trits: positions.iter().map(|&i| self.trits[i]).collect(),
        }
    }

    /// Concatenates two patterns (`self` first).
    #[must_use]
    pub fn concat(&self, other: &Pattern) -> Pattern {
        let mut trits = self.trits.clone();
        trits.extend_from_slice(&other.trits);
        Pattern { trits }
    }
}

impl FromStr for Pattern {
    type Err = ParsePatternError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut trits = Vec::with_capacity(s.len());
        for (pos, ch) in s.chars().enumerate() {
            trits.push(match ch {
                '0' => Trit::Zero,
                '1' => Trit::One,
                '-' | '*' | 'x' | 'X' => Trit::DontCare,
                _ => return Err(ParsePatternError { ch, pos }),
            });
        }
        Ok(Pattern { trits })
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.trits {
            write!(f, "{}", t.to_char())?;
        }
        Ok(())
    }
}

impl FromIterator<Trit> for Pattern {
    fn from_iter<I: IntoIterator<Item = Trit>>(iter: I) -> Self {
        Pattern {
            trits: iter.into_iter().collect(),
        }
    }
}

/// Iterator over the concrete vectors matched by a [`Pattern`].
///
/// Produced by [`Pattern::minterms`].
#[derive(Debug)]
pub struct Minterms<'a> {
    pattern: &'a Pattern,
    dc_positions: Vec<usize>,
    counter: u64,
    done: bool,
}

impl Iterator for Minterms<'_> {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let mut bits = self.pattern.resolve_zero();
        for (k, &pos) in self.dc_positions.iter().enumerate() {
            bits[pos] = (self.counter >> k) & 1 == 1;
        }
        self.counter += 1;
        if self.dc_positions.len() >= 64 || self.counter >= (1u64 << self.dc_positions.len()) {
            self.done = true;
        }
        Some(bits)
    }
}

/// Converts a little-endian bit slice to an integer (`bits[0]` is bit 0).
///
/// # Panics
///
/// Panics if more than 64 bits are given.
#[must_use]
pub fn bits_to_index(bits: &[bool]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 bits supported");
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Converts an integer to a little-endian bit vector of the given width.
#[must_use]
pub fn index_to_bits(index: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (index >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p: Pattern = "10-1-".parse().unwrap();
        assert_eq!(p.to_string(), "10-1-");
        assert_eq!(p.width(), 5);
        assert_eq!(p.num_specified(), 3);
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = "10z".parse::<Pattern>().unwrap_err();
        assert_eq!(err.pos, 2);
        assert_eq!(err.ch, 'z');
    }

    #[test]
    fn matches_respects_dont_cares() {
        let p: Pattern = "1-0".parse().unwrap();
        assert!(p.matches(&[true, false, false]));
        assert!(p.matches(&[true, true, false]));
        assert!(!p.matches(&[true, true, true]));
        assert!(!p.matches(&[false, false, false]));
    }

    #[test]
    fn intersects_detects_conflicts() {
        let a: Pattern = "1-0".parse().unwrap();
        let b: Pattern = "11-".parse().unwrap();
        let c: Pattern = "0--".parse().unwrap();
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn covers_is_containment() {
        let wide: Pattern = "1--".parse().unwrap();
        let narrow: Pattern = "1-0".parse().unwrap();
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.covers(&wide));
    }

    #[test]
    fn minterm_enumeration_is_exhaustive() {
        let p: Pattern = "1--0".parse().unwrap();
        let mts: Vec<Vec<bool>> = p.minterms().collect();
        assert_eq!(mts.len(), 4);
        for m in &mts {
            assert!(p.matches(m));
        }
        // All distinct.
        for i in 0..mts.len() {
            for j in (i + 1)..mts.len() {
                assert_ne!(mts[i], mts[j]);
            }
        }
        assert_eq!(p.num_minterms(), 4);
    }

    #[test]
    fn minterms_of_fully_specified_pattern() {
        let p: Pattern = "101".parse().unwrap();
        let mts: Vec<Vec<bool>> = p.minterms().collect();
        assert_eq!(mts, vec![vec![true, false, true]]);
    }

    #[test]
    fn minterms_of_empty_pattern_yields_one_empty_vector() {
        let p = Pattern::default();
        let mts: Vec<Vec<bool>> = p.minterms().collect();
        assert_eq!(mts, vec![Vec::<bool>::new()]);
    }

    #[test]
    fn project_selects_columns() {
        let p: Pattern = "10-1".parse().unwrap();
        assert_eq!(p.project(&[3, 0]).to_string(), "11");
        assert_eq!(p.project(&[2]).to_string(), "-");
    }

    #[test]
    fn bits_index_roundtrip() {
        for v in 0..32u64 {
            let bits = index_to_bits(v, 5);
            assert_eq!(bits_to_index(&bits), v);
        }
    }

    #[test]
    fn concat_widths_add() {
        let a: Pattern = "1-".parse().unwrap();
        let b: Pattern = "0".parse().unwrap();
        assert_eq!(a.concat(&b).to_string(), "1-0");
    }
}
