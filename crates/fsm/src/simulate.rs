//! Reference (oracle) simulation of an [`Stg`].
//!
//! Hardware implementations produced by the mapping flows are verified by
//! lockstep comparison against this simulator. The timing model matches a
//! synchronous implementation with registered outputs: the output visible
//! during cycle *t+1* is the output of the transition taken at the clock
//! edge ending cycle *t* (exactly the behaviour of a BRAM whose data
//! outputs are latched, and of a Mealy FSM with an output register).
//!
//! [`Stg`]: crate::stg::Stg

use crate::stg::{StateId, Stg};

/// Step-by-step simulator holding the architectural state of the machine.
#[derive(Debug, Clone)]
pub struct StgSimulator<'a> {
    stg: &'a Stg,
    state: StateId,
    outputs: Vec<bool>,
}

impl<'a> StgSimulator<'a> {
    /// Creates a simulator in the reset state with cleared output latches.
    #[must_use]
    pub fn new(stg: &'a Stg) -> Self {
        StgSimulator {
            stg,
            state: stg.reset_state(),
            outputs: vec![false; stg.num_outputs()],
        }
    }

    /// The machine being simulated.
    #[must_use]
    pub fn stg(&self) -> &'a Stg {
        self.stg
    }

    /// Current state.
    #[must_use]
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Currently latched outputs.
    #[must_use]
    pub fn outputs(&self) -> &[bool] {
        &self.outputs
    }

    /// Applies one clock edge with the given inputs; returns the new latched
    /// outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the machine's input count.
    pub fn clock(&mut self, inputs: &[bool]) -> &[bool] {
        let (next, out) = self.stg.step(self.state, inputs);
        self.state = next;
        self.outputs = out;
        &self.outputs
    }

    /// Returns to the reset state with cleared outputs.
    pub fn reset(&mut self) {
        self.state = self.stg.reset_state();
        self.outputs = vec![false; self.stg.num_outputs()];
    }

    /// Runs a whole stimulus, returning the output trace (one vector per
    /// cycle, sampled *after* each clock edge).
    pub fn run<I>(&mut self, stimulus: I) -> Vec<Vec<bool>>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        stimulus
            .into_iter()
            .map(|inp| self.clock(&inp).to_vec())
            .collect()
    }
}

/// Full trace of a run: per-cycle states and outputs, for activity analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// State after each clock edge.
    pub states: Vec<StateId>,
    /// Latched outputs after each clock edge.
    pub outputs: Vec<Vec<bool>>,
}

/// Simulates `stg` over `stimulus` from reset, recording states and outputs.
///
/// # Panics
///
/// Panics if any stimulus vector has the wrong width.
#[must_use]
pub fn trace<I>(stg: &Stg, stimulus: I) -> Trace
where
    I: IntoIterator<Item = Vec<bool>>,
{
    let mut sim = StgSimulator::new(stg);
    let mut states = Vec::new();
    let mut outputs = Vec::new();
    for inp in stimulus {
        sim.clock(&inp);
        states.push(sim.state());
        outputs.push(sim.outputs().to_vec());
    }
    Trace { states, outputs }
}

/// Fraction of cycles in which neither the state nor the latched outputs
/// changed — the "idle" occupancy that determines clock-control savings
/// (paper Sec. 6, Table 3).
#[must_use]
pub fn idle_fraction(stg: &Stg, trace: &Trace) -> f64 {
    if trace.states.is_empty() {
        return 0.0;
    }
    let mut prev_state = stg.reset_state();
    let mut prev_out = vec![false; stg.num_outputs()];
    let mut idle = 0usize;
    for (s, o) in trace.states.iter().zip(&trace.outputs) {
        if *s == prev_state && *o == prev_out {
            idle += 1;
        }
        prev_state = *s;
        prev_out = o.clone();
    }
    idle as f64 / trace.states.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stg::StgBuilder;

    fn detector() -> Stg {
        let mut b = StgBuilder::new("seq0101", 1, 1);
        let a = b.state("A");
        let s_b = b.state("B");
        let c = b.state("C");
        let d = b.state("D");
        b.transition(a, "0", s_b, "0");
        b.transition(a, "1", a, "0");
        b.transition(s_b, "1", c, "0");
        b.transition(s_b, "0", s_b, "0");
        b.transition(c, "0", d, "0");
        b.transition(c, "1", a, "0");
        b.transition(d, "1", c, "1");
        b.transition(d, "0", s_b, "0");
        b.build().unwrap()
    }

    #[test]
    fn detector_fires_on_0101() {
        let stg = detector();
        let stim: Vec<Vec<bool>> = [0, 1, 0, 1].iter().map(|&b| vec![b == 1]).collect();
        let mut sim = StgSimulator::new(&stg);
        let trace = sim.run(stim);
        assert_eq!(trace[0], vec![false]);
        assert_eq!(trace[1], vec![false]);
        assert_eq!(trace[2], vec![false]);
        assert_eq!(trace[3], vec![true], "0101 must be detected");
    }

    #[test]
    fn detector_overlapping_sequences() {
        // 010101 contains two overlapping matches (positions 3 and 5).
        let stg = detector();
        let stim: Vec<Vec<bool>> = [0, 1, 0, 1, 0, 1].iter().map(|&b| vec![b == 1]).collect();
        let mut sim = StgSimulator::new(&stg);
        let trace = sim.run(stim);
        let hits: Vec<usize> = trace
            .iter()
            .enumerate()
            .filter(|(_, o)| o[0])
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![3, 5]);
    }

    #[test]
    fn reset_restores_initial_state() {
        let stg = detector();
        let mut sim = StgSimulator::new(&stg);
        sim.clock(&[false]);
        assert_ne!(sim.state(), stg.reset_state());
        sim.reset();
        assert_eq!(sim.state(), stg.reset_state());
        assert_eq!(sim.outputs(), &[false]);
    }

    #[test]
    fn idle_fraction_of_self_loop() {
        // Machine that idles on input 0 and toggles state on input 1.
        let mut b = StgBuilder::new("idle", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "0", a, "0");
        b.transition(a, "1", c, "1");
        b.transition(c, "0", c, "1");
        b.transition(c, "1", a, "0");
        let stg = b.build().unwrap();
        // All-zero stimulus: first cycle is idle (A stays A, out stays 0).
        let stim = vec![vec![false]; 10];
        let tr = trace(&stg, stim);
        assert!((idle_fraction(&stg, &tr) - 1.0).abs() < 1e-9);
        // All-ones stimulus never idles: the state toggles every cycle.
        let stim: Vec<Vec<bool>> = vec![vec![true]; 10];
        let tr = trace(&stg, stim);
        assert!(idle_fraction(&stg, &tr) < 1e-9);
    }

    #[test]
    fn trace_records_states() {
        let stg = detector();
        let tr = trace(&stg, vec![vec![false], vec![true]]);
        assert_eq!(tr.states.len(), 2);
        assert_eq!(stg.state_name(tr.states[0]), "B");
        assert_eq!(stg.state_name(tr.states[1]), "C");
    }
}
