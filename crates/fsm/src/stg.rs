//! State-transition-graph (STG) representation of a finite-state machine.
//!
//! The paper describes an FSM as the six-tuple *(I, O, S, r0, δ, Y)*; the
//! [`Stg`] type is the direct realization: a set of named states, a reset
//! state, and a list of [`Transition`]s whose input and output fields are
//! ternary [`Pattern`]s exactly as in a KISS2 file.
//!
//! ## Semantics
//!
//! * Transitions from the same state may use overlapping input cubes. The
//!   machine resolves overlaps by **declaration order**: the first matching
//!   transition wins ([`Stg::lookup`]). Every downstream consumer — the
//!   reference simulator, the logic synthesizer and the memory-content
//!   generator — uses the same rule, so all implementations stay
//!   cycle-equivalent.
//! * If *no* transition matches, the machine **holds its state** and drives
//!   all outputs to zero ([`Stg::step`]). This is the completion rule applied
//!   uniformly to incompletely specified benchmarks.
//! * Output don't-cares resolve to `0`.

use crate::pattern::{bits_to_index, Pattern};
use std::fmt;

/// Index of a state within an [`Stg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The state index as a `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One edge of the state-transition graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Source state.
    pub from: StateId,
    /// Ternary condition over the FSM inputs.
    pub input: Pattern,
    /// Destination state.
    pub to: StateId,
    /// Ternary output values asserted while taking this transition.
    pub output: Pattern,
}

/// Errors produced when constructing or validating an [`Stg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StgError {
    /// A transition references a state index that does not exist.
    UnknownState {
        /// The offending id.
        id: StateId,
        /// Index of the offending transition.
        transition: usize,
    },
    /// A transition's input pattern width differs from `num_inputs`.
    InputWidth {
        /// Index of the offending transition.
        transition: usize,
        /// The width found.
        found: usize,
        /// The width expected.
        expected: usize,
    },
    /// A transition's output pattern width differs from `num_outputs`.
    OutputWidth {
        /// Index of the offending transition.
        transition: usize,
        /// The width found.
        found: usize,
        /// The width expected.
        expected: usize,
    },
    /// The reset state index does not exist.
    BadReset(StateId),
    /// Two state names collide.
    DuplicateStateName(String),
    /// The machine has no states.
    Empty,
}

impl fmt::Display for StgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StgError::UnknownState { id, transition } => {
                write!(f, "transition {transition} references unknown state {id}")
            }
            StgError::InputWidth {
                transition,
                found,
                expected,
            } => write!(
                f,
                "transition {transition} input width {found}, expected {expected}"
            ),
            StgError::OutputWidth {
                transition,
                found,
                expected,
            } => write!(
                f,
                "transition {transition} output width {found}, expected {expected}"
            ),
            StgError::BadReset(id) => write!(f, "reset state {id} does not exist"),
            StgError::DuplicateStateName(n) => write!(f, "duplicate state name {n:?}"),
            StgError::Empty => write!(f, "machine has no states"),
        }
    }
}

impl std::error::Error for StgError {}

/// A finite-state machine as a state-transition graph.
///
/// # Examples
///
/// Build the 0101 sequence detector of the paper's Figure 2:
///
/// ```
/// use fsm_model::stg::StgBuilder;
///
/// let mut b = StgBuilder::new("seq0101", 1, 1);
/// let a = b.state("A");
/// let s_b = b.state("B");
/// let c = b.state("C");
/// let d = b.state("D");
/// b.transition(a, "0", s_b, "0");
/// b.transition(a, "1", a, "0");
/// b.transition(s_b, "1", c, "0");
/// b.transition(s_b, "0", s_b, "0");
/// b.transition(c, "0", d, "0");
/// b.transition(c, "1", a, "0");
/// b.transition(d, "1", c, "1");
/// b.transition(d, "0", s_b, "0");
/// let stg = b.build()?;
/// assert_eq!(stg.num_states(), 4);
/// assert!(stg.is_deterministic());
/// # Ok::<(), fsm_model::stg::StgError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stg {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    state_names: Vec<String>,
    transitions: Vec<Transition>,
    reset: StateId,
}

impl Stg {
    /// Creates an STG after validating widths, state ids and names.
    ///
    /// # Errors
    ///
    /// Returns an [`StgError`] describing the first inconsistency found.
    pub fn new(
        name: impl Into<String>,
        num_inputs: usize,
        num_outputs: usize,
        state_names: Vec<String>,
        transitions: Vec<Transition>,
        reset: StateId,
    ) -> Result<Self, StgError> {
        if state_names.is_empty() {
            return Err(StgError::Empty);
        }
        let mut seen = std::collections::HashSet::new();
        for n in &state_names {
            if !seen.insert(n.clone()) {
                return Err(StgError::DuplicateStateName(n.clone()));
            }
        }
        if reset.index() >= state_names.len() {
            return Err(StgError::BadReset(reset));
        }
        for (i, t) in transitions.iter().enumerate() {
            if t.from.index() >= state_names.len() {
                return Err(StgError::UnknownState {
                    id: t.from,
                    transition: i,
                });
            }
            if t.to.index() >= state_names.len() {
                return Err(StgError::UnknownState {
                    id: t.to,
                    transition: i,
                });
            }
            if t.input.width() != num_inputs {
                return Err(StgError::InputWidth {
                    transition: i,
                    found: t.input.width(),
                    expected: num_inputs,
                });
            }
            if t.output.width() != num_outputs {
                return Err(StgError::OutputWidth {
                    transition: i,
                    found: t.output.width(),
                    expected: num_outputs,
                });
            }
        }
        Ok(Stg {
            name: name.into(),
            num_inputs,
            num_outputs,
            state_names,
            transitions,
            reset,
        })
    }

    /// The machine's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary inputs (`|I|` bits).
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs (`|O|` bits).
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states (`|S|`).
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.state_names.len()
    }

    /// Iterator over all state ids.
    pub fn states(&self) -> impl Iterator<Item = StateId> {
        (0..self.state_names.len() as u32).map(StateId)
    }

    /// The name of a state.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn state_name(&self, id: StateId) -> &str {
        &self.state_names[id.index()]
    }

    /// Looks a state up by name.
    #[must_use]
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId(i as u32))
    }

    /// The reset state `r0`.
    #[must_use]
    pub fn reset_state(&self) -> StateId {
        self.reset
    }

    /// All transitions, in declaration (priority) order.
    #[must_use]
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Transitions leaving `state`, in priority order.
    pub fn transitions_from(&self, state: StateId) -> impl Iterator<Item = &Transition> {
        self.transitions.iter().filter(move |t| t.from == state)
    }

    /// The first transition from `state` matching the concrete `inputs`.
    ///
    /// Declaration order defines priority when input cubes overlap.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    #[must_use]
    pub fn lookup(&self, state: StateId, inputs: &[bool]) -> Option<&Transition> {
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        self.transitions_from(state)
            .find(|t| t.input.matches(inputs))
    }

    /// Computes the next state and concrete outputs for one clock cycle.
    ///
    /// Applies the completion rule: with no matching transition the state
    /// holds and outputs are zero. Output don't-cares resolve to zero.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.num_inputs()`.
    #[must_use]
    pub fn step(&self, state: StateId, inputs: &[bool]) -> (StateId, Vec<bool>) {
        match self.lookup(state, inputs) {
            Some(t) => (t.to, t.output.resolve_zero()),
            None => (state, vec![false; self.num_outputs]),
        }
    }

    /// Returns `true` if no two transitions from the same state have
    /// intersecting input cubes with conflicting behaviour.
    ///
    /// Overlaps that agree on both destination and (specified) outputs are
    /// tolerated.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        for s in self.states() {
            let ts: Vec<&Transition> = self.transitions_from(s).collect();
            for i in 0..ts.len() {
                for j in (i + 1)..ts.len() {
                    if ts[i].input.intersects(&ts[j].input)
                        && (ts[i].to != ts[j].to || !compatible_outputs(ts[i], ts[j]))
                    {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Returns `true` if every state has a matching transition for every
    /// concrete input vector.
    ///
    /// Checked exactly by minterm enumeration, so it is exponential in the
    /// number of *don't-care-free* inputs; FSM benchmarks are small enough.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        let total = 1u64 << self.num_inputs.min(63);
        self.states().all(|s| {
            let mut covered = vec![false; total as usize];
            for t in self.transitions_from(s) {
                for m in t.input.minterms() {
                    covered[bits_to_index(&m) as usize] = true;
                }
            }
            covered.iter().all(|&c| c)
        })
    }

    /// Expands the machine into a dense per-state transition table.
    ///
    /// # Errors
    ///
    /// Returns an error string if the machine has more than
    /// [`TransitionTable::MAX_INPUTS`] inputs.
    pub fn to_table(&self) -> Result<TransitionTable, String> {
        TransitionTable::from_stg(self)
    }

    /// Renames the machine (used by generators and transforms).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }
}

fn compatible_outputs(a: &Transition, b: &Transition) -> bool {
    a.output
        .trits()
        .iter()
        .zip(b.output.trits())
        .all(|(x, y)| x.value().is_none() || y.value().is_none() || x == y)
}

/// Incremental builder for [`Stg`].
///
/// Collects states and transitions, then validates once in [`build`].
///
/// [`build`]: StgBuilder::build
#[derive(Debug, Clone)]
pub struct StgBuilder {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    state_names: Vec<String>,
    transitions: Vec<Transition>,
    reset: Option<StateId>,
}

impl StgBuilder {
    /// Starts a builder for a machine with the given interface widths.
    #[must_use]
    pub fn new(name: impl Into<String>, num_inputs: usize, num_outputs: usize) -> Self {
        StgBuilder {
            name: name.into(),
            num_inputs,
            num_outputs,
            state_names: Vec::new(),
            transitions: Vec::new(),
            reset: None,
        }
    }

    /// Adds (or finds) a state by name; the first state added becomes the
    /// default reset state.
    pub fn state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(i) = self.state_names.iter().position(|n| *n == name) {
            return StateId(i as u32);
        }
        self.state_names.push(name);
        StateId((self.state_names.len() - 1) as u32)
    }

    /// Overrides the reset state.
    pub fn reset(&mut self, state: StateId) -> &mut Self {
        self.reset = Some(state);
        self
    }

    /// Adds a transition; `input` and `output` are KISS2-style ternary
    /// strings.
    ///
    /// # Panics
    ///
    /// Panics if either string contains characters other than `0`, `1`, `-`.
    pub fn transition(
        &mut self,
        from: StateId,
        input: &str,
        to: StateId,
        output: &str,
    ) -> &mut Self {
        let input: Pattern = input.parse().expect("invalid input pattern");
        let output: Pattern = output.parse().expect("invalid output pattern");
        self.transitions.push(Transition {
            from,
            input,
            to,
            output,
        });
        self
    }

    /// Adds a transition with pre-parsed patterns.
    pub fn transition_pat(
        &mut self,
        from: StateId,
        input: Pattern,
        to: StateId,
        output: Pattern,
    ) -> &mut Self {
        self.transitions.push(Transition {
            from,
            input,
            to,
            output,
        });
        self
    }

    /// Validates and produces the [`Stg`].
    ///
    /// # Errors
    ///
    /// See [`Stg::new`].
    pub fn build(self) -> Result<Stg, StgError> {
        let reset = self.reset.unwrap_or(StateId(0));
        Stg::new(
            self.name,
            self.num_inputs,
            self.num_outputs,
            self.state_names,
            self.transitions,
            reset,
        )
    }
}

/// Dense expansion of an [`Stg`]: for every state and every concrete input
/// minterm, the (next state, concrete outputs) pair after applying the
/// completion and priority rules.
///
/// This is the canonical semantics all hardware implementations must match.
#[derive(Debug, Clone)]
pub struct TransitionTable {
    num_inputs: usize,
    num_outputs: usize,
    /// `entries[state][input_index] = (next, outputs-as-bits)`.
    entries: Vec<Vec<(StateId, u64)>>,
    /// Whether the entry was explicitly specified (`true`) or filled by the
    /// completion rule (`false`). Completion-rule entries form the don't-care
    /// set available to logic minimization when equivalence is relaxed.
    specified: Vec<Vec<bool>>,
}

impl TransitionTable {
    /// Hard cap on inputs for dense expansion (2^20 entries per state).
    pub const MAX_INPUTS: usize = 20;

    /// Expands an [`Stg`].
    ///
    /// # Errors
    ///
    /// Fails if the machine has more than [`Self::MAX_INPUTS`] inputs.
    pub fn from_stg(stg: &Stg) -> Result<Self, String> {
        if stg.num_inputs() > Self::MAX_INPUTS {
            return Err(format!(
                "machine {} has {} inputs; dense expansion supports at most {}",
                stg.name(),
                stg.num_inputs(),
                Self::MAX_INPUTS
            ));
        }
        let n = 1usize << stg.num_inputs();
        let mut entries = Vec::with_capacity(stg.num_states());
        let mut specified = Vec::with_capacity(stg.num_states());
        for s in stg.states() {
            let mut row = vec![(s, 0u64); n];
            let mut spec = vec![false; n];
            // Iterate transitions lowest-priority first so that higher
            // priority (earlier) transitions overwrite later ones... we
            // instead iterate in priority order and skip already-set slots,
            // which realizes first-match-wins directly.
            for t in stg.transitions_from(s) {
                for m in t.input.minterms() {
                    let idx = bits_to_index(&m) as usize;
                    if !spec[idx] {
                        spec[idx] = true;
                        row[idx] = (t.to, bits_to_index(&t.output.resolve_zero()));
                    }
                }
            }
            entries.push(row);
            specified.push(spec);
        }
        Ok(TransitionTable {
            num_inputs: stg.num_inputs(),
            num_outputs: stg.num_outputs(),
            entries,
            specified,
        })
    }

    /// Number of inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of states.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.entries.len()
    }

    /// The (next state, packed outputs) entry for `state` on input minterm
    /// `input_index` (little-endian packing of input bits).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn entry(&self, state: StateId, input_index: usize) -> (StateId, u64) {
        self.entries[state.index()][input_index]
    }

    /// Whether the entry was explicitly specified by a transition.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[must_use]
    pub fn is_specified(&self, state: StateId, input_index: usize) -> bool {
        self.specified[state.index()][input_index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Stg {
        let mut b = StgBuilder::new("toy", 2, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "1-", c, "1");
        b.transition(a, "00", a, "0");
        b.transition(c, "--", a, "0");
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_machine() {
        let stg = toy();
        assert_eq!(stg.num_states(), 2);
        assert_eq!(stg.num_inputs(), 2);
        assert_eq!(stg.reset_state(), StateId(0));
        assert_eq!(stg.state_name(StateId(1)), "B");
        assert_eq!(stg.state_by_name("B"), Some(StateId(1)));
    }

    #[test]
    fn lookup_uses_priority_order() {
        let mut b = StgBuilder::new("prio", 1, 1);
        let a = b.state("A");
        b.transition(a, "-", a, "1"); // matches everything, declared first
        b.transition(a, "0", a, "0"); // shadowed
        let stg = b.build().unwrap();
        let t = stg.lookup(StateId(0), &[false]).unwrap();
        assert_eq!(t.output.to_string(), "1");
    }

    #[test]
    fn step_completion_holds_state_zero_output() {
        let stg = toy();
        // state A on input 01 (bit0=true? inputs are [i0, i1]): pattern "1-"
        // means i0 must be 1. Input [false,true] matches neither "1-" nor
        // "00" => hold.
        let (next, out) = stg.step(StateId(0), &[false, true]);
        assert_eq!(next, StateId(0));
        assert_eq!(out, vec![false]);
    }

    #[test]
    fn determinism_and_completeness_checks() {
        let stg = toy();
        assert!(stg.is_deterministic());
        assert!(!stg.is_complete()); // A lacks input 01

        let mut b = StgBuilder::new("nd", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "-", a, "0");
        b.transition(a, "1", c, "0");
        let nd = b.build().unwrap();
        assert!(!nd.is_deterministic());
    }

    #[test]
    fn overlapping_but_agreeing_transitions_are_deterministic() {
        let mut b = StgBuilder::new("ok", 2, 2);
        let a = b.state("A");
        b.transition(a, "1-", a, "1-");
        b.transition(a, "11", a, "10");
        let stg = b.build().unwrap();
        assert!(stg.is_deterministic());
    }

    #[test]
    fn table_matches_step() {
        let stg = toy();
        let table = stg.to_table().unwrap();
        for s in stg.states() {
            for idx in 0..4usize {
                let bits = crate::pattern::index_to_bits(idx as u64, 2);
                let (n1, o1) = stg.step(s, &bits);
                let (n2, o2) = table.entry(s, idx);
                assert_eq!(n1, n2);
                assert_eq!(bits_to_index(&o1), o2);
            }
        }
    }

    #[test]
    fn table_tracks_specified_entries() {
        let stg = toy();
        let table = stg.to_table().unwrap();
        // A on input 01 (index 2: i0=0, i1=1) is unspecified.
        assert!(!table.is_specified(StateId(0), 2));
        assert!(table.is_specified(StateId(0), 0));
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Stg::new("e", 1, 1, vec![], vec![], StateId(0)),
            Err(StgError::Empty)
        ));
        let err = Stg::new(
            "w",
            2,
            1,
            vec!["A".into()],
            vec![Transition {
                from: StateId(0),
                input: "1".parse().unwrap(),
                to: StateId(0),
                output: "0".parse().unwrap(),
            }],
            StateId(0),
        )
        .unwrap_err();
        assert!(matches!(err, StgError::InputWidth { .. }));
        let err =
            Stg::new("d", 1, 1, vec!["A".into(), "A".into()], vec![], StateId(0)).unwrap_err();
        assert!(matches!(err, StgError::DuplicateStateName(_)));
    }
}
