//! BLIF (Berkeley Logic Interchange Format) reader and writer.
//!
//! The paper's baseline flow runs SIS on the KISS2 STG and emits a BLIF
//! netlist "containing the combinatorial portion of the FSMs and FFs to
//! store the states" (Sec. 5). This module reads and writes that artifact
//! so externally synthesized netlists can be dropped into the flow, and so
//! this workspace's own synthesis results can be inspected with standard
//! tools.
//!
//! Supported constructs: `.model`, `.inputs`, `.outputs`, `.names` (with
//! `0/1/-` single-output cover rows), `.latch` (with optional type/clock
//! and init value), `.end`, comments (`#`) and line continuations (`\`).

use crate::cover::Cover;
use crate::cube::Cube;
use crate::network::{Network, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A latch (D flip-flop) declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlifLatch {
    /// Signal driving the D pin.
    pub input: String,
    /// Signal driven by the Q pin.
    pub output: String,
    /// Initial value (BLIF codes 0, 1, 2 = don't care, 3 = unknown;
    /// normalized to a bool with 2/3 → false, matching cleared FPGA FFs).
    pub init: bool,
}

/// A parsed BLIF model: a combinational [`Network`] plus latches.
///
/// Latch Q signals appear as extra primary inputs of the network (after
/// the declared `.inputs`); latch D signals appear as extra primary
/// outputs (after the declared `.outputs`), named `<q>$next`.
#[derive(Debug, Clone)]
pub struct BlifModel {
    /// Model name.
    pub name: String,
    /// Declared primary inputs, in order.
    pub inputs: Vec<String>,
    /// Declared primary outputs, in order.
    pub outputs: Vec<String>,
    /// Latches.
    pub latches: Vec<BlifLatch>,
    /// The combinational network.
    pub network: Network,
}

/// Errors from BLIF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line number (0 when the error is global).
    pub line: usize,
    /// Explanation.
    pub reason: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blif line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseBlifError {}

fn err(line: usize, reason: impl Into<String>) -> ParseBlifError {
    ParseBlifError {
        line,
        reason: reason.into(),
    }
}

#[derive(Debug)]
struct NamesDef {
    line: usize,
    fanins: Vec<String>,
    output: String,
    /// (input pattern, output value) rows.
    rows: Vec<(String, bool)>,
}

/// Parses a single-model BLIF file.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed text, undefined signals, or
/// combinational cycles.
pub fn parse(text: &str) -> Result<BlifModel, ParseBlifError> {
    // Join continuation lines, strip comments.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_start = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if pending.is_empty() {
            pending_start = i + 1;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
        } else {
            pending.push_str(line);
            let joined = std::mem::take(&mut pending);
            if !joined.trim().is_empty() {
                lines.push((pending_start, joined));
            }
        }
    }

    let mut name = String::from("top");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<BlifLatch> = Vec::new();
    let mut names_defs: Vec<NamesDef> = Vec::new();
    let mut current: Option<NamesDef> = None;

    for (lineno, line) in &lines {
        let lineno = *lineno;
        let mut fields = line.split_whitespace();
        let Some(first) = fields.next() else { continue };
        if first.starts_with('.') {
            if let Some(def) = current.take() {
                names_defs.push(def);
            }
            match first {
                ".model" => {
                    if let Some(n) = fields.next() {
                        name = n.to_string();
                    }
                }
                ".inputs" => inputs.extend(fields.map(str::to_string)),
                ".outputs" => outputs.extend(fields.map(str::to_string)),
                ".names" => {
                    let mut sigs: Vec<String> = fields.map(str::to_string).collect();
                    let output = sigs
                        .pop()
                        .ok_or_else(|| err(lineno, ".names needs at least an output"))?;
                    current = Some(NamesDef {
                        line: lineno,
                        fanins: sigs,
                        output,
                        rows: Vec::new(),
                    });
                }
                ".latch" => {
                    let f: Vec<&str> = fields.collect();
                    if f.len() < 2 {
                        return Err(err(lineno, ".latch needs input and output"));
                    }
                    // Optional: [type clock] [init]; init is the last field
                    // when it parses as 0-3.
                    let init = f
                        .last()
                        .and_then(|v| v.parse::<u8>().ok())
                        .is_some_and(|v| v == 1);
                    latches.push(BlifLatch {
                        input: f[0].to_string(),
                        output: f[1].to_string(),
                        init,
                    });
                }
                ".end" => break,
                // Tolerated/ignored directives commonly emitted by tools.
                ".default_input_arrival"
                | ".default_output_required"
                | ".wire_load_slope"
                | ".clock" => {}
                other => return Err(err(lineno, format!("unsupported directive {other}"))),
            }
        } else {
            // A cover row of the current .names.
            let def = current
                .as_mut()
                .ok_or_else(|| err(lineno, "cover row outside .names"))?;
            if def.fanins.is_empty() {
                // Constant: single field "0"/"1".
                let v = match first {
                    "1" => true,
                    "0" => false,
                    _ => return Err(err(lineno, "constant row must be 0 or 1")),
                };
                def.rows.push((String::new(), v));
            } else {
                let out_field = fields
                    .next()
                    .ok_or_else(|| err(lineno, "cover row needs input pattern and output"))?;
                if first.len() != def.fanins.len() {
                    return Err(err(
                        lineno,
                        format!(
                            "row width {} but .names has {} inputs",
                            first.len(),
                            def.fanins.len()
                        ),
                    ));
                }
                let v = match out_field {
                    "1" => true,
                    "0" => false,
                    _ => return Err(err(lineno, "output column must be 0 or 1")),
                };
                def.rows.push((first.to_string(), v));
            }
        }
    }
    if let Some(def) = current.take() {
        names_defs.push(def);
    }

    build_model(name, inputs, outputs, latches, names_defs)
}

fn build_model(
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    latches: Vec<BlifLatch>,
    names_defs: Vec<NamesDef>,
) -> Result<BlifModel, ParseBlifError> {
    // Combinational PIs: declared inputs + latch Q signals.
    let mut network = Network::new();
    let mut signal: HashMap<String, NodeId> = HashMap::new();
    for i in &inputs {
        signal.insert(i.clone(), network.add_input(i.clone()));
    }
    for l in &latches {
        signal.insert(l.output.clone(), network.add_input(l.output.clone()));
    }

    // Definition lookup by output signal.
    let mut def_of: HashMap<&str, &NamesDef> = HashMap::new();
    for d in &names_defs {
        if def_of.insert(d.output.as_str(), d).is_some() {
            return Err(err(d.line, format!("signal {:?} defined twice", d.output)));
        }
        if signal.contains_key(&d.output) {
            return Err(err(
                d.line,
                format!("signal {:?} is already an input/latch output", d.output),
            ));
        }
    }

    // DFS-based topological elaboration.
    fn elaborate(
        out_sig: &str,
        def_of: &HashMap<&str, &NamesDef>,
        network: &mut Network,
        signal: &mut HashMap<String, NodeId>,
        visiting: &mut Vec<String>,
    ) -> Result<NodeId, ParseBlifError> {
        if let Some(&id) = signal.get(out_sig) {
            return Ok(id);
        }
        if visiting.iter().any(|v| v == out_sig) {
            return Err(err(0, format!("combinational cycle through {out_sig:?}")));
        }
        let def = def_of
            .get(out_sig)
            .ok_or_else(|| err(0, format!("undefined signal {out_sig:?}")))?;
        visiting.push(out_sig.to_string());
        let mut fanin_ids = Vec::with_capacity(def.fanins.len());
        for f in &def.fanins {
            fanin_ids.push(elaborate(f, def_of, network, signal, visiting)?);
        }
        visiting.pop();

        // BLIF rows with output 0 describe the complement; rows must agree.
        let mut on_rows: Vec<&str> = Vec::new();
        let mut off_rows: Vec<&str> = Vec::new();
        for (p, v) in &def.rows {
            if *v {
                on_rows.push(p);
            } else {
                off_rows.push(p);
            }
        }
        let id = if def.fanins.is_empty() {
            network.add_constant(!on_rows.is_empty())
        } else {
            let n = def.fanins.len();
            let cover = if !on_rows.is_empty() {
                let cubes = on_rows
                    .iter()
                    .map(|p| parse_row(p, def.line))
                    .collect::<Result<Vec<Cube>, _>>()?;
                Cover::from_cubes(n, cubes)
            } else if !off_rows.is_empty() {
                // Offset description: complement it.
                let cubes = off_rows
                    .iter()
                    .map(|p| parse_row(p, def.line))
                    .collect::<Result<Vec<Cube>, _>>()?;
                Cover::from_cubes(n, cubes).complement()
            } else {
                Cover::empty(n)
            };
            network
                .add_logic(fanin_ids, cover)
                .map_err(|e| err(def.line, e.to_string()))?
        };
        signal.insert(out_sig.to_string(), id);
        Ok(id)
    }

    let mut visiting = Vec::new();
    // Elaborate declared outputs and latch D inputs.
    let mut net_outputs: Vec<(String, NodeId)> = Vec::new();
    for o in &outputs {
        let id = elaborate(o, &def_of, &mut network, &mut signal, &mut visiting)?;
        net_outputs.push((o.clone(), id));
    }
    for l in &latches {
        let id = elaborate(&l.input, &def_of, &mut network, &mut signal, &mut visiting)?;
        net_outputs.push((format!("{}$next", l.output), id));
    }
    for (n, id) in net_outputs {
        network
            .add_output(n, id)
            .map_err(|e| err(0, e.to_string()))?;
    }

    Ok(BlifModel {
        name,
        inputs,
        outputs,
        latches,
        network,
    })
}

fn parse_row(p: &str, line: usize) -> Result<Cube, ParseBlifError> {
    let pat: fsm_model::pattern::Pattern = p
        .parse()
        .map_err(|e| err(line, format!("bad cover row {p:?}: {e}")))?;
    if pat.width() > 64 {
        return Err(err(line, "cover row wider than 64 variables"));
    }
    Ok(Cube::from_pattern(&pat))
}

/// Serializes a model to BLIF text. Round-trips through [`parse`].
#[must_use]
pub fn write(model: &BlifModel) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, ".model {}", model.name);
    if !model.inputs.is_empty() {
        let _ = writeln!(s, ".inputs {}", model.inputs.join(" "));
    }
    if !model.outputs.is_empty() {
        let _ = writeln!(s, ".outputs {}", model.outputs.join(" "));
    }
    for l in &model.latches {
        let _ = writeln!(s, ".latch {} {} {}", l.input, l.output, u8::from(l.init));
    }
    // Name every node: inputs keep their names; internal nodes get n<i>.
    let net = &model.network;
    let mut names: Vec<String> = Vec::with_capacity(net.len());
    for (i, node) in net.nodes().iter().enumerate() {
        names.push(match node {
            crate::network::Node::Input(n) => n.clone(),
            _ => format!("n{i}"),
        });
    }
    // Outputs must carry their declared names: emit buffers where the
    // output name differs from the driving node's name.
    for (i, node) in net.nodes().iter().enumerate() {
        match node {
            crate::network::Node::Input(_) => {}
            crate::network::Node::Constant(v) => {
                let _ = writeln!(s, ".names {}", names[i]);
                if *v {
                    let _ = writeln!(s, "1");
                }
            }
            crate::network::Node::Logic { fanins, cover } => {
                let fan_names: Vec<&str> =
                    fanins.iter().map(|f| names[f.index()].as_str()).collect();
                let _ = writeln!(s, ".names {} {}", fan_names.join(" "), names[i]);
                for cube in cover.cubes() {
                    let _ = writeln!(s, "{} 1", cube.to_pattern());
                }
            }
        }
    }
    // Reconnect declared outputs and latch D signals to their drivers with
    // buffers where the names differ.
    let mut emitted_buffers: std::collections::HashSet<String> = std::collections::HashSet::new();
    for (out_name, id) in net.outputs() {
        // Latch D outputs are named `<q>$next` internally; the `.latch`
        // statement references the original D signal name instead.
        let target = model
            .latches
            .iter()
            .find(|l| format!("{}$next", l.output) == *out_name)
            .map_or(out_name.as_str(), |l| l.input.as_str());
        if target != names[id.index()] && emitted_buffers.insert(target.to_string()) {
            let _ = writeln!(s, ".names {} {}", names[id.index()], target);
            let _ = writeln!(s, "1 1");
        }
    }
    s.push_str(".end\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTER: &str = "\
.model counter2
.inputs en
.outputs q0 q1
.latch d0 s0 0
.latch d1 s1 0
# q wires
.names s0 q0
1 1
.names s1 q1
1 1
.names en s0 d0
10 1
01 1
.names en s0 s1 d1
110 1
101 1
011 1
-11 0   # ignored? no: mixing polarities is invalid, keep onset rows only
.end
";

    #[test]
    fn parses_counter() {
        // Remove the intentionally mixed-polarity row for the happy path.
        let text = COUNTER.replace(
            "-11 0   # ignored? no: mixing polarities is invalid, keep onset rows only\n",
            "",
        );
        let m = parse(&text).unwrap();
        assert_eq!(m.name, "counter2");
        assert_eq!(m.inputs, vec!["en"]);
        assert_eq!(m.outputs, vec!["q0", "q1"]);
        assert_eq!(m.latches.len(), 2);
        // Network has PIs: en, s0, s1 and POs: q0, q1, s0$next, s1$next.
        assert_eq!(m.network.inputs().count(), 3);
        assert_eq!(m.network.outputs().len(), 4);
        // Behaviour: with en=1, s0 toggles; d1 = en XOR-carry.
        // eval order of PIs: en, s0, s1.
        let v = m.network.eval(&[true, false, false]);
        // q0=s0=0, q1=s1=0, d0=1 (en xor s0), d1=0.
        assert_eq!(v, vec![false, false, true, false]);
        let v = m.network.eval(&[true, true, false]);
        assert_eq!(v, vec![true, false, false, true]); // carry into d1
    }

    #[test]
    fn offset_rows_complement() {
        let text = "\
.model inv
.inputs a
.outputs y
.names a y
1 0
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.network.eval(&[true]), vec![false]);
        assert_eq!(m.network.eval(&[false]), vec![true]);
    }

    #[test]
    fn constants_parse() {
        let text = ".model k\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.network.eval(&[]), vec![true, false]);
    }

    #[test]
    fn cycle_detected() {
        let text = "\
.model cyc
.inputs a
.outputs y
.names a x y
11 1
.names a y x
11 1
.end
";
        let e = parse(text).unwrap_err();
        assert!(e.reason.contains("cycle"), "{e}");
    }

    #[test]
    fn undefined_signal_detected() {
        let text = ".model u\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
        let e = parse(text).unwrap_err();
        assert!(e.reason.contains("undefined"), "{e}");
    }

    #[test]
    fn roundtrip_preserves_behaviour() {
        let text = COUNTER.replace(
            "-11 0   # ignored? no: mixing polarities is invalid, keep onset rows only\n",
            "",
        );
        let m1 = parse(&text).unwrap();
        let out = write(&m1);
        let m2 = parse(&out).unwrap();
        assert_eq!(m1.inputs, m2.inputs);
        assert_eq!(m1.outputs, m2.outputs);
        assert_eq!(m1.latches, m2.latches);
        for bits in 0..8u64 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m1.network.eval(&v), m2.network.eval(&v), "bits {bits:03b}");
        }
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model c\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.inputs, vec!["a", "b"]);
    }

    #[test]
    fn latch_with_type_and_clock() {
        let text =
            ".model l\n.inputs d\n.outputs q\n.latch d q re clk 1\n.names q q_buf\n1 1\n.end\n";
        let m = parse(text).unwrap();
        assert!(m.latches[0].init);
        assert_eq!(m.latches[0].input, "d");
    }
}
