//! Sum-of-products covers and the unate-recursion tautology check.
//!
//! A [`Cover`] is a set of [`Cube`]s over a common variable space; its
//! function is the OR of the cubes. The central primitive is
//! [`Cover::is_tautology`], implemented with the classic unate-recursion
//! paradigm (unate covers are tautologies iff they contain the universal
//! cube; binate covers recurse on Shannon cofactors of the most binate
//! variable). Everything the minimizer needs — containment of a cube in a
//! cover, redundancy — reduces to cofactor-then-tautology.

use crate::cube::Cube;
use std::fmt;

/// A set of product terms over a common variable space.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cover {
    num_vars: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// The empty (constant-false) cover.
    #[must_use]
    pub fn empty(num_vars: usize) -> Self {
        Cover {
            num_vars,
            cubes: Vec::new(),
        }
    }

    /// A cover holding exactly the given cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube has a different variable count.
    #[must_use]
    pub fn from_cubes(num_vars: usize, cubes: Vec<Cube>) -> Self {
        assert!(
            cubes.iter().all(|c| c.num_vars() == num_vars),
            "cube variable-count mismatch"
        );
        Cover { num_vars, cubes }
    }

    /// The constant-true cover (single universal cube).
    #[must_use]
    pub fn tautology(num_vars: usize) -> Self {
        Cover {
            num_vars,
            cubes: vec![Cube::full(num_vars)],
        }
    }

    /// Number of variables in the space.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The cubes of the cover.
    #[must_use]
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True if the cover has no cubes (constant false).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Total literal count (the secondary espresso cost function).
    #[must_use]
    pub fn num_literals(&self) -> usize {
        self.cubes.iter().map(Cube::num_literals).sum()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube's variable count differs.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(
            cube.num_vars(),
            self.num_vars,
            "cube variable-count mismatch"
        );
        self.cubes.push(cube);
    }

    /// Evaluates the cover on a packed assignment.
    #[must_use]
    pub fn eval(&self, bits: u64) -> bool {
        self.cubes.iter().any(|c| c.contains_minterm(bits))
    }

    /// The cofactor of the cover with respect to a cube: keep cubes
    /// intersecting `c`, freeing the variables `c` specifies.
    #[must_use]
    pub fn cofactor(&self, c: &Cube) -> Cover {
        let mut out = Vec::new();
        for cube in &self.cubes {
            if cube.intersects(c) {
                let mask = cube.mask() & !c.mask();
                out.push(Cube::from_raw(self.num_vars, mask, cube.value() & mask));
            }
        }
        Cover {
            num_vars: self.num_vars,
            cubes: out,
        }
    }

    /// Is the cover a tautology (constant true)?
    ///
    /// Unate recursion: splits on the most binate variable; a unate cover is
    /// a tautology iff it contains the universal cube.
    #[must_use]
    pub fn is_tautology(&self) -> bool {
        // Fast exits.
        if self.cubes.iter().any(|c| c.num_literals() == 0) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Count polarities per variable to find a binate splitting variable.
        let mut pos = [0u32; 64];
        let mut neg = [0u32; 64];
        for c in &self.cubes {
            let mut m = c.mask();
            while m != 0 {
                let v = m.trailing_zeros() as usize;
                m &= m - 1;
                if c.value() >> v & 1 == 1 {
                    pos[v] += 1;
                } else {
                    neg[v] += 1;
                }
            }
        }
        let mut split = None;
        let mut best = 0u32;
        for v in 0..self.num_vars.min(64) {
            if pos[v] > 0 && neg[v] > 0 {
                let score = pos[v].min(neg[v]);
                if score > best {
                    best = score;
                    split = Some(v);
                }
            }
        }
        match split {
            None => {
                // Unate cover with no universal cube: minterm-deficient
                // unless some variable... the unate-tautology theorem says
                // NOT a tautology (universal-cube case handled above).
                false
            }
            Some(v) => {
                let lit1 = Cube::full(self.num_vars).with_literal(v, true);
                let lit0 = Cube::full(self.num_vars).with_literal(v, false);
                self.cofactor(&lit1).is_tautology() && self.cofactor(&lit0).is_tautology()
            }
        }
    }

    /// Does the cover contain every point of `cube`?
    ///
    /// Classic reduction: `cube ⊆ F` iff `F` cofactored by `cube` is a
    /// tautology.
    #[must_use]
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        // Single-cube containment fast path.
        if self.cubes.iter().any(|c| c.contains(cube)) {
            return true;
        }
        self.cofactor(cube).is_tautology()
    }

    /// Does the cover contain every point of `other`?
    #[must_use]
    pub fn covers(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// The union of two covers.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    #[must_use]
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.num_vars, other.num_vars, "variable-count mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend_from_slice(&other.cubes);
        Cover {
            num_vars: self.num_vars,
            cubes,
        }
    }

    /// Subtracts a cube from the cover, keeping the result disjoint if the
    /// input was disjoint.
    #[must_use]
    pub fn subtract_cube(&self, cube: &Cube) -> Cover {
        let mut out = Vec::new();
        for c in &self.cubes {
            out.extend(c.subtract(cube));
        }
        Cover {
            num_vars: self.num_vars,
            cubes: out,
        }
    }

    /// The complement of the cover, computed by sharping the universe.
    ///
    /// Exponential in the worst case; fine for FSM-scale functions.
    #[must_use]
    pub fn complement(&self) -> Cover {
        let mut result = Cover::tautology(self.num_vars);
        for c in &self.cubes {
            result = result.subtract_cube(c);
            if result.is_empty() {
                break;
            }
        }
        result
    }

    /// Removes cubes contained in another single cube of the cover.
    pub fn remove_single_cube_contained(&mut self) {
        let cubes = std::mem::take(&mut self.cubes);
        let mut kept: Vec<Cube> = Vec::with_capacity(cubes.len());
        // Larger cubes first so containment removal is one pass.
        let mut sorted = cubes;
        sorted.sort_by_key(|c| c.num_literals());
        'outer: for c in sorted {
            for k in &kept {
                if k.contains(&c) {
                    continue 'outer;
                }
            }
            kept.push(c);
        }
        self.cubes = kept;
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.cubes {
            writeln!(f, "{c}")?;
        }
        Ok(())
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if cubes disagree on variable count or the iterator is empty
    /// (the variable count cannot be inferred); use [`Cover::empty`] for
    /// empty covers.
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let n = cubes
            .first()
            .expect("cannot infer variable count from empty iterator")
            .num_vars();
        Cover::from_cubes(n, cubes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    fn cover(n: usize, cubes: &[&str]) -> Cover {
        Cover::from_cubes(n, cubes.iter().map(|s| c(s)).collect())
    }

    /// Brute-force tautology oracle.
    fn taut_oracle(f: &Cover) -> bool {
        (0..1u64 << f.num_vars()).all(|m| f.eval(m))
    }

    #[test]
    fn tautology_simple_cases() {
        assert!(cover(2, &["--"]).is_tautology());
        assert!(cover(1, &["0", "1"]).is_tautology());
        assert!(!cover(2, &["1-", "00"]).is_tautology()); // misses 01? no: 1-,00 misses 01 => not taut
        assert!(cover(2, &["1-", "0-"]).is_tautology());
        assert!(!Cover::empty(3).is_tautology());
    }

    #[test]
    fn tautology_matches_oracle_on_structured_covers() {
        // xor-ish and random-ish covers over 4 vars.
        let cases = [
            cover(4, &["1--0", "0--1", "-11-", "-00-"]),
            cover(4, &["1---", "-1--", "--1-", "---1", "0000"]),
            cover(4, &["11--", "00--"]),
            cover(4, &["1---", "01--", "001-", "0001", "0000"]),
        ];
        for f in &cases {
            assert_eq!(f.is_tautology(), taut_oracle(f), "{f}");
        }
    }

    #[test]
    fn covers_cube_reduces_to_cofactor_tautology() {
        let f = cover(3, &["1--", "01-"]);
        assert!(f.covers_cube(&c("1-0")));
        assert!(f.covers_cube(&c("11-")));
        assert!(!f.covers_cube(&c("0--")));
        // Multi-cube containment (no single cube contains it).
        let g = cover(2, &["1-", "-1"]);
        assert!(!g.covers_cube(&c("--")));
        let h = cover(2, &["1-", "0-"]);
        assert!(h.covers_cube(&c("--")));
    }

    #[test]
    fn complement_is_exact() {
        let f = cover(3, &["1-0", "01-"]);
        let g = f.complement();
        for m in 0..8u64 {
            assert_eq!(g.eval(m), !f.eval(m), "minterm {m:03b}");
        }
        // Complement of empty is tautology; of tautology is empty.
        assert!(Cover::empty(2).complement().is_tautology());
        assert!(Cover::tautology(2).complement().is_empty());
    }

    #[test]
    fn subtract_cube_is_exact() {
        let f = cover(3, &["1--", "-1-"]);
        let g = f.subtract_cube(&c("11-"));
        for m in 0..8u64 {
            let expect = f.eval(m) && !c("11-").contains_minterm(m);
            assert_eq!(g.eval(m), expect, "minterm {m:03b}");
        }
    }

    #[test]
    fn containment_removal_keeps_function() {
        let mut f = cover(3, &["1--", "10-", "101", "0-0"]);
        let before: Vec<bool> = (0..8).map(|m| f.eval(m)).collect();
        f.remove_single_cube_contained();
        assert_eq!(f.len(), 2);
        let after: Vec<bool> = (0..8).map(|m| f.eval(m)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn union_and_eval() {
        let f = cover(2, &["1-"]).union(&cover(2, &["-1"]));
        assert!(f.eval(0b01)); // var0=1
        assert!(f.eval(0b10)); // var1=1
        assert!(!f.eval(0b00));
    }
}
