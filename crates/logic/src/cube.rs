//! Bit-packed ternary cubes for two-level logic.
//!
//! A [`Cube`] is a product term over up to 64 variables. Each variable is
//! either a positive literal, a negative literal, or absent (don't-care).
//! The representation packs the *care* set and the literal *values* into
//! two `u64` words, which keeps the minimizer's inner loops branch-light.
//!
//! The 64-variable cap is ample for the FSM domain (state bits + inputs of
//! the largest MCNC benchmark total 17) and is enforced at construction.

use fsm_model::pattern::{Pattern, Trit};
use std::fmt;

/// A product term over `num_vars ≤ 64` boolean variables.
///
/// Invariant: `val & !mask == 0` and bits above `num_vars` are clear.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    num_vars: u8,
    /// Bit i set ⇒ variable i appears as a literal.
    mask: u64,
    /// For literal variables, bit i gives the required value.
    val: u64,
}

impl Cube {
    /// The universal cube (no literals) over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 64`.
    #[must_use]
    pub fn full(num_vars: usize) -> Self {
        assert!(num_vars <= 64, "Cube supports at most 64 variables");
        Cube {
            num_vars: num_vars as u8,
            mask: 0,
            val: 0,
        }
    }

    /// A fully specified cube (a minterm) from packed bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 64`.
    #[must_use]
    pub fn minterm(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 64, "Cube supports at most 64 variables");
        let mask = if num_vars == 64 {
            u64::MAX
        } else {
            (1u64 << num_vars) - 1
        };
        Cube {
            num_vars: num_vars as u8,
            mask,
            val: bits & mask,
        }
    }

    /// Builds a cube from raw mask/value words.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 64` or the invariant `val ⊆ mask` is violated.
    #[must_use]
    pub fn from_raw(num_vars: usize, mask: u64, val: u64) -> Self {
        assert!(num_vars <= 64, "Cube supports at most 64 variables");
        let space = if num_vars == 64 {
            u64::MAX
        } else {
            (1u64 << num_vars) - 1
        };
        assert_eq!(mask & !space, 0, "mask has bits above num_vars");
        assert_eq!(val & !mask, 0, "val has bits outside mask");
        Cube {
            num_vars: num_vars as u8,
            mask,
            val,
        }
    }

    /// Converts an [`fsm_model`] ternary [`Pattern`] into a cube.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is wider than 64 trits.
    #[must_use]
    pub fn from_pattern(p: &Pattern) -> Self {
        assert!(p.width() <= 64, "Cube supports at most 64 variables");
        let mut mask = 0u64;
        let mut val = 0u64;
        for (i, t) in p.trits().iter().enumerate() {
            match t {
                Trit::Zero => mask |= 1 << i,
                Trit::One => {
                    mask |= 1 << i;
                    val |= 1 << i;
                }
                Trit::DontCare => {}
            }
        }
        Cube {
            num_vars: p.width() as u8,
            mask,
            val,
        }
    }

    /// Converts back to a ternary [`Pattern`].
    #[must_use]
    pub fn to_pattern(&self) -> Pattern {
        (0..self.num_vars())
            .map(|i| match self.literal(i) {
                Some(true) => Trit::One,
                Some(false) => Trit::Zero,
                None => Trit::DontCare,
            })
            .collect()
    }

    /// Number of variables in the cube's space.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The literal on variable `var`: `Some(polarity)` or `None` if absent.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn literal(&self, var: usize) -> Option<bool> {
        assert!(var < self.num_vars(), "variable out of range");
        if self.mask >> var & 1 == 1 {
            Some(self.val >> var & 1 == 1)
        } else {
            None
        }
    }

    /// Number of literals (specified variables).
    #[must_use]
    pub fn num_literals(&self) -> usize {
        self.mask.count_ones() as usize
    }

    /// Returns a copy with variable `var` constrained to `polarity`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn with_literal(&self, var: usize, polarity: bool) -> Self {
        assert!(var < self.num_vars(), "variable out of range");
        let mut c = *self;
        c.mask |= 1 << var;
        if polarity {
            c.val |= 1 << var;
        } else {
            c.val &= !(1 << var);
        }
        c
    }

    /// Returns a copy with variable `var` freed (raised to don't-care).
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    #[must_use]
    pub fn without_literal(&self, var: usize) -> Self {
        assert!(var < self.num_vars(), "variable out of range");
        let mut c = *self;
        c.mask &= !(1 << var);
        c.val &= !(1 << var);
        c
    }

    /// Does the concrete assignment (packed bits) lie inside the cube?
    #[must_use]
    pub fn contains_minterm(&self, bits: u64) -> bool {
        bits & self.mask == self.val
    }

    /// Does `self` contain `other` (every point of `other` is in `self`)?
    #[must_use]
    pub fn contains(&self, other: &Cube) -> bool {
        // Self's literals must all be enforced by other with equal polarity.
        self.mask & !other.mask == 0 && (self.val ^ other.val) & self.mask == 0
    }

    /// Do the cubes share at least one point?
    #[must_use]
    pub fn intersects(&self, other: &Cube) -> bool {
        (self.val ^ other.val) & self.mask & other.mask == 0
    }

    /// The intersection cube, if non-empty.
    #[must_use]
    pub fn intersection(&self, other: &Cube) -> Option<Cube> {
        if !self.intersects(other) {
            return None;
        }
        Some(Cube {
            num_vars: self.num_vars,
            mask: self.mask | other.mask,
            val: self.val | other.val,
        })
    }

    /// The smallest cube containing both (supercube).
    #[must_use]
    pub fn supercube(&self, other: &Cube) -> Cube {
        let agree = !(self.val ^ other.val);
        let mask = self.mask & other.mask & agree;
        Cube {
            num_vars: self.num_vars,
            mask,
            val: self.val & mask,
        }
    }

    /// Number of variables on which the cubes conflict (opposite literals).
    #[must_use]
    pub fn distance(&self, other: &Cube) -> usize {
        ((self.val ^ other.val) & self.mask & other.mask).count_ones() as usize
    }

    /// Computes `self \ other` as a disjoint list of cubes (the *sharp*
    /// operation). The result covers exactly the points of `self` outside
    /// `other`.
    #[must_use]
    pub fn subtract(&self, other: &Cube) -> Vec<Cube> {
        if !self.intersects(other) {
            return vec![*self];
        }
        if other.contains(self) {
            return Vec::new();
        }
        // For each literal of `other` free in `self`, split off the half of
        // `self` with the opposite polarity; constrain and continue.
        let mut out = Vec::new();
        let mut rest = *self;
        let mut free = other.mask & !self.mask;
        while free != 0 {
            let var = free.trailing_zeros() as usize;
            free &= free - 1;
            let pol = other.val >> var & 1 == 1;
            out.push(rest.with_literal(var, !pol));
            rest = rest.with_literal(var, pol);
        }
        out
    }

    /// Number of points in the cube (`2^(n - literals)`), saturating.
    #[must_use]
    pub fn num_minterms(&self) -> u64 {
        let free = self.num_vars() - self.num_literals();
        1u64.checked_shl(free as u32).unwrap_or(u64::MAX)
    }

    /// Iterates the packed minterms of the cube.
    pub fn minterms(&self) -> impl Iterator<Item = u64> + '_ {
        let free_vars: Vec<usize> = (0..self.num_vars())
            .filter(|&v| self.mask >> v & 1 == 0)
            .collect();
        let count = 1u64
            .checked_shl(free_vars.len() as u32)
            .expect("minterm iteration over >63 free vars is a bug");
        let base = self.val;
        (0..count).map(move |k| {
            let mut m = base;
            for (bit, &var) in free_vars.iter().enumerate() {
                if k >> bit & 1 == 1 {
                    m |= 1 << var;
                }
            }
            m
        })
    }

    /// Raw care mask (bit i set ⇒ variable i is a literal).
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Raw literal values (meaningful only under [`mask`](Self::mask)).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.val
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_pattern())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    #[test]
    fn pattern_roundtrip() {
        for s in ["10-", "---", "000", "1-1-0"] {
            assert_eq!(c(s).to_string(), s);
        }
    }

    #[test]
    fn containment() {
        assert!(c("1--").contains(&c("1-0")));
        assert!(!c("1-0").contains(&c("1--")));
        assert!(c("---").contains(&c("101")));
        assert!(c("101").contains(&c("101")));
    }

    #[test]
    fn intersection_and_distance() {
        assert_eq!(c("1--").intersection(&c("-0-")), Some(c("10-")));
        assert_eq!(c("1--").intersection(&c("0--")), None);
        assert_eq!(c("11-").distance(&c("00-")), 2);
        assert_eq!(c("1--").distance(&c("-1-")), 0);
    }

    #[test]
    fn supercube_is_smallest_container() {
        let s = c("10-").supercube(&c("11-"));
        assert_eq!(s, c("1--"));
        assert!(s.contains(&c("10-")) && s.contains(&c("11-")));
    }

    #[test]
    fn subtract_covers_exact_difference() {
        let a = c("1---");
        let b = c("1-01");
        let diff = a.subtract(&b);
        // Verify point-by-point over the whole 4-var space.
        for m in 0..16u64 {
            let in_a = a.contains_minterm(m);
            let in_b = b.contains_minterm(m);
            let in_diff = diff.iter().any(|d| d.contains_minterm(m));
            assert_eq!(in_diff, in_a && !in_b, "minterm {m:04b}");
        }
        // Pieces are pairwise disjoint.
        for i in 0..diff.len() {
            for j in (i + 1)..diff.len() {
                assert!(!diff[i].intersects(&diff[j]));
            }
        }
    }

    #[test]
    fn subtract_edge_cases() {
        assert!(c("10-").subtract(&c("1--")).is_empty());
        assert_eq!(c("10-").subtract(&c("01-")), vec![c("10-")]);
    }

    #[test]
    fn minterm_iteration() {
        let cube = c("1-0-");
        let ms: Vec<u64> = cube.minterms().collect();
        assert_eq!(ms.len(), 4);
        for m in &ms {
            assert!(cube.contains_minterm(*m));
        }
        assert_eq!(cube.num_minterms(), 4);
    }

    #[test]
    fn literal_editing() {
        let cube = c("1--");
        assert_eq!(cube.with_literal(2, true), c("1-1"));
        assert_eq!(c("1-1").without_literal(0), c("--1"));
        assert_eq!(cube.literal(0), Some(true));
        assert_eq!(cube.literal(1), None);
        assert_eq!(cube.num_literals(), 1);
    }

    #[test]
    fn minterm_constructor() {
        let m = Cube::minterm(3, 0b101);
        assert_eq!(m.to_string(), "101");
        assert!(m.contains_minterm(0b101));
        assert!(!m.contains_minterm(0b001));
    }
}
