//! SOP decomposition into a 2-bounded network.
//!
//! Technology mapping wants a network whose nodes have at most 2 fanins
//! (AND/OR/NOT); cut enumeration is then simple and complete. This module
//! rewrites every wide SOP node into balanced AND-trees (one per cube)
//! joined by a balanced OR-tree, with inverters shared per fanin.
//!
//! Balanced trees keep the decomposed depth logarithmic, which the
//! depth-oriented mapper then translates into shallow LUT networks —
//! mirroring how Synplify's mapper treats the SIS output in the paper's
//! flow.

use crate::cover::Cover;
use crate::network::{gates, Network, Node, NodeId};

/// A structurally hashed 2-bounded network builder.
///
/// Hash-consing identical gates (same operation, same fanins) is the
/// classic *strash* step: FSM next-state and output functions share many
/// state-decoding product terms, and sharing them is what multi-level
/// synthesis (SIS) buys over naive two-level decomposition.
struct Strash {
    out: Network,
    /// (op, a, b) -> node. op: 0 = AND, 1 = OR; a <= b canonical order.
    gates: std::collections::HashMap<(u8, NodeId, NodeId), NodeId>,
    inverters: std::collections::HashMap<NodeId, NodeId>,
}

impl Strash {
    fn new() -> Self {
        Strash {
            out: Network::new(),
            gates: std::collections::HashMap::new(),
            inverters: std::collections::HashMap::new(),
        }
    }

    fn inverter(&mut self, of: NodeId) -> NodeId {
        if let Some(&n) = self.inverters.get(&of) {
            return n;
        }
        let n = self
            .out
            .add_logic(vec![of], gates::not1())
            .expect("inverter of existing node");
        self.inverters.insert(of, n);
        n
    }

    fn gate2(&mut self, op: u8, x: NodeId, y: NodeId) -> NodeId {
        if x == y {
            return x; // AND/OR are idempotent
        }
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        if let Some(&n) = self.gates.get(&(op, a, b)) {
            return n;
        }
        let cover = if op == 0 { gates::and2() } else { gates::or2() };
        let n = self
            .out
            .add_logic(vec![a, b], cover)
            .expect("gate over existing nodes");
        self.gates.insert((op, a, b), n);
        n
    }

    /// Reduces `leaves` with a balanced tree of `op` gates. Leaves are
    /// sorted first so identical sets build identical (shared) trees.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty.
    fn tree(&mut self, op: u8, leaves: &[NodeId]) -> NodeId {
        assert!(!leaves.is_empty(), "tree needs at least one leaf");
        let mut level: Vec<NodeId> = leaves.to_vec();
        level.sort_unstable();
        level.dedup();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if pair.len() == 2 {
                    next.push(self.gate2(op, pair[0], pair[1]));
                } else {
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        level[0]
    }
}

/// Rewrites `network` so that every logic node has at most 2 fanins,
/// hash-consing identical gates across the whole network.
///
/// Functionality at the primary outputs is preserved exactly.
#[must_use]
pub fn decompose2(network: &Network) -> Network {
    let mut st = Strash::new();
    // Map old node id -> new node id.
    let mut remap: Vec<Option<NodeId>> = vec![None; network.len()];

    for (i, node) in network.nodes().iter().enumerate() {
        let new_id = match node {
            Node::Input(name) => st.out.add_input(name.clone()),
            Node::Constant(v) => st.out.add_constant(*v),
            Node::Logic { fanins, cover } => {
                let new_fanins: Vec<NodeId> = fanins
                    .iter()
                    .map(|f| remap[f.index()].expect("topological order"))
                    .collect();
                decompose_node(&mut st, &new_fanins, cover)
            }
        };
        remap[i] = Some(new_id);
    }
    for (name, id) in network.outputs() {
        st.out
            .add_output(name.clone(), remap[id.index()].expect("all nodes mapped"))
            .expect("outputs remain valid");
    }
    st.out.sweep()
}

/// Builds the 2-bounded realization of one SOP node; returns the root.
fn decompose_node(st: &mut Strash, fanins: &[NodeId], cover: &Cover) -> NodeId {
    if cover.is_empty() {
        return st.out.add_constant(false);
    }
    // Universal cube -> constant true.
    if cover.cubes().iter().any(|c| c.num_literals() == 0) {
        return st.out.add_constant(true);
    }
    let mut terms: Vec<NodeId> = Vec::with_capacity(cover.len());
    for cube in cover.cubes() {
        let mut literals: Vec<NodeId> = Vec::with_capacity(cube.num_literals());
        for (var, &fanin) in fanins.iter().enumerate() {
            match cube.literal(var) {
                Some(true) => literals.push(fanin),
                Some(false) => {
                    let inv = st.inverter(fanin);
                    literals.push(inv);
                }
                None => {}
            }
        }
        terms.push(st.tree(0, &literals));
    }
    st.tree(1, &terms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    fn pat(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    fn random_inputs(n: usize, seed: u64) -> Vec<Vec<bool>> {
        let mut x = seed | 1;
        (0..64)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (0..n).map(|i| x >> i & 1 == 1).collect()
            })
            .collect()
    }

    #[test]
    fn wide_sop_becomes_2_bounded_and_equivalent() {
        let mut net = Network::new();
        let ins: Vec<NodeId> = (0..6).map(|i| net.add_input(format!("i{i}"))).collect();
        let cover = Cover::from_cubes(
            6,
            vec![pat("11----"), pat("--0011"), pat("1-1-1-"), pat("000000")],
        );
        let y = net.add_logic(ins.clone(), cover).unwrap();
        net.add_output("y", y).unwrap();

        let d = decompose2(&net);
        assert!(d.max_fanin() <= 2);
        for bits in random_inputs(6, 99) {
            assert_eq!(net.eval(&bits), d.eval(&bits), "inputs {bits:?}");
        }
        // Exhaustive too, it is only 64 points.
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits), d.eval(&bits));
        }
    }

    #[test]
    fn constant_covers_become_constant_nodes() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let zero = net.add_logic(vec![a], Cover::empty(1)).unwrap();
        let one = net.add_logic(vec![a], Cover::tautology(1)).unwrap();
        net.add_output("z", zero).unwrap();
        net.add_output("o", one).unwrap();
        let d = decompose2(&net);
        assert_eq!(d.eval(&[false]), vec![false, true]);
        assert_eq!(d.eval(&[true]), vec![false, true]);
    }

    #[test]
    fn inverters_are_shared() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        // Two nodes both needing !a.
        let c1 = Cover::from_cubes(2, vec![pat("01")]); // !a & b
        let c2 = Cover::from_cubes(2, vec![pat("00")]); // !a & !b
        let n1 = net.add_logic(vec![a, b], c1).unwrap();
        let n2 = net.add_logic(vec![a, b], c2).unwrap();
        net.add_output("x", n1).unwrap();
        net.add_output("y", n2).unwrap();
        let d = decompose2(&net);
        // Count inverters of `a`: nodes with single fanin = a's new id and
        // NOT cover. New id of a is still the first input.
        let inv_count = d
            .nodes()
            .iter()
            .filter(|n| match n {
                Node::Logic { fanins, cover } => fanins.len() == 1 && cover == &gates::not1(),
                _ => false,
            })
            .count();
        assert_eq!(inv_count, 2, "one inverter per input, shared across nodes");
        for m in 0..4u64 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1];
            assert_eq!(net.eval(&bits), d.eval(&bits));
        }
    }

    #[test]
    fn multi_level_network_survives() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let wide = Cover::from_cubes(3, vec![pat("11-"), pat("--1")]);
        let mid = net.add_logic(vec![a, b, c], wide).unwrap();
        let top = Cover::from_cubes(2, vec![pat("10")]);
        let y = net.add_logic(vec![mid, a], top).unwrap();
        net.add_output("y", y).unwrap();
        let d = decompose2(&net);
        assert!(d.max_fanin() <= 2);
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits), d.eval(&bits));
        }
    }
}
