//! An espresso-style two-level minimizer.
//!
//! Implements the classic EXPAND → IRREDUNDANT → REDUCE loop over
//! [`Cover`]s with an explicit don't-care set, using
//! cofactor-then-tautology as the single validity primitive:
//!
//! * **EXPAND** raises literals of each cube as long as the raised cube
//!   stays inside `onset ∪ dcset` (i.e. never touches the offset), then
//!   drops cubes contained in the expanded one.
//! * **IRREDUNDANT** removes cubes covered by the rest of the cover plus
//!   the don't-care set.
//! * **REDUCE** shrinks each cube to the supercube of the points only it
//!   covers, enabling the next EXPAND to escape local minima.
//!
//! The result covers `onset` exactly on the care space: it contains every
//! onset point and never intersects the offset. This mirrors what SIS does
//! to the FSM's combinational cone in the paper's baseline flow (Fig. 6).

use crate::cover::Cover;
use crate::cube::Cube;

/// Outcome of a minimization run.
#[derive(Debug, Clone)]
pub struct MinimizeResult {
    /// The minimized cover.
    pub cover: Cover,
    /// Number of EXPAND/IRREDUNDANT/REDUCE iterations executed.
    pub iterations: usize,
}

/// Minimizes `onset` against the optional `dcset`.
///
/// # Panics
///
/// Panics if the covers disagree on variable count.
#[must_use]
pub fn minimize(onset: &Cover, dcset: &Cover) -> MinimizeResult {
    assert_eq!(
        onset.num_vars(),
        dcset.num_vars(),
        "onset/dcset variable-count mismatch"
    );
    let num_vars = onset.num_vars();
    if onset.is_empty() {
        return MinimizeResult {
            cover: Cover::empty(num_vars),
            iterations: 0,
        };
    }
    // The feasible region cubes may expand into (fixed for the whole run).
    let feasible = onset.union(dcset);
    if feasible.is_tautology() {
        // The universal cube covers the onset and never leaves the feasible
        // region, so it is the optimum.
        return MinimizeResult {
            cover: Cover::tautology(num_vars),
            iterations: 0,
        };
    }

    let mut cover = onset.clone();
    cover.remove_single_cube_contained();
    let mut iterations = 0usize;
    let mut best_cost = cost(&cover);
    loop {
        iterations += 1;
        cover = expand(&cover, &feasible);
        cover = irredundant(&cover, onset, dcset);
        let c = cost(&cover);
        if c >= best_cost && iterations > 1 {
            break;
        }
        best_cost = best_cost.min(c);
        if iterations >= 8 {
            break;
        }
        cover = reduce(&cover, dcset);
    }
    // Final cleanup passes.
    cover = expand(&cover, &feasible);
    cover = irredundant(&cover, onset, dcset);
    MinimizeResult { cover, iterations }
}

/// Convenience wrapper with an empty don't-care set.
#[must_use]
pub fn minimize_exact_care(onset: &Cover) -> MinimizeResult {
    minimize(onset, &Cover::empty(onset.num_vars()))
}

/// Cost used to drive the loop: cube count first, then literal count.
fn cost(cover: &Cover) -> (usize, usize) {
    (cover.len(), cover.num_literals())
}

/// EXPAND: raise literals while remaining inside `feasible`.
fn expand(cover: &Cover, feasible: &Cover) -> Cover {
    let num_vars = cover.num_vars();
    // Expand big cubes first: they are most likely to swallow others.
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    cubes.sort_by_key(|c| c.num_literals());
    let mut out: Vec<Cube> = Vec::with_capacity(cubes.len());
    for cube in cubes {
        // Skip cubes already swallowed by an expanded one.
        if out.iter().any(|o| o.contains(&cube)) {
            continue;
        }
        let mut cur = cube;
        // Deterministic literal order keeps runs reproducible.
        for var in 0..num_vars {
            if cur.literal(var).is_some() {
                let raised = cur.without_literal(var);
                if feasible.covers_cube(&raised) {
                    cur = raised;
                }
            }
        }
        out.retain(|o| !cur.contains(o));
        out.push(cur);
    }
    Cover::from_cubes(num_vars, out)
}

/// IRREDUNDANT: drop cubes covered by the rest plus the dcset.
///
/// Greedy: tries to drop cubes with the most literals first (small cubes
/// are most likely redundant after expansion).
fn irredundant(cover: &Cover, onset: &Cover, dcset: &Cover) -> Cover {
    let num_vars = cover.num_vars();
    let mut order: Vec<usize> = (0..cover.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(cover.cubes()[i].num_literals()));
    let mut keep = vec![true; cover.len()];
    for &i in &order {
        keep[i] = false;
        let rest = Cover::from_cubes(
            num_vars,
            cover
                .cubes()
                .iter()
                .enumerate()
                .filter(|(j, _)| keep[*j])
                .map(|(_, c)| *c)
                .collect(),
        )
        .union(dcset);
        if !rest.covers_cube(&cover.cubes()[i]) {
            keep[i] = true;
        }
    }
    let result = Cover::from_cubes(
        num_vars,
        cover
            .cubes()
            .iter()
            .enumerate()
            .filter(|(j, _)| keep[*j])
            .map(|(_, c)| *c)
            .collect(),
    );
    debug_assert!(result.union(dcset).covers(onset), "irredundant lost onset");
    result
}

/// REDUCE: shrink each cube to the supercube of the points only it covers.
fn reduce(cover: &Cover, dcset: &Cover) -> Cover {
    let num_vars = cover.num_vars();
    let mut cubes: Vec<Cube> = cover.cubes().to_vec();
    // Reduce large cubes first (classic heuristic: order by decreasing size).
    cubes.sort_by_key(|c| c.num_literals());
    for i in 0..cubes.len() {
        let cube = cubes[i];
        // Points of `cube` not covered by the rest of the cover ∪ dc.
        let mut residual = vec![cube];
        for (j, other) in cubes.iter().enumerate() {
            if j != i {
                residual = residual
                    .into_iter()
                    .flat_map(|c| c.subtract(other))
                    .collect();
            }
        }
        for d in dcset.cubes() {
            residual = residual.into_iter().flat_map(|c| c.subtract(d)).collect();
        }
        if residual.is_empty() {
            // Fully redundant; leave for IRREDUNDANT to delete.
            continue;
        }
        let mut sup = residual[0];
        for r in &residual[1..] {
            sup = sup.supercube(r);
        }
        cubes[i] = sup;
    }
    Cover::from_cubes(num_vars, cubes)
}

/// Verifies that `cover` equals `onset` on the care space: covers all of
/// `onset` and stays inside `onset ∪ dcset`. Used by tests and by the
/// synthesis flow's internal assertions.
#[must_use]
pub fn is_exact_cover(cover: &Cover, onset: &Cover, dcset: &Cover) -> bool {
    let feasible = onset.union(dcset);
    cover.union(dcset).covers(onset) && cover.cubes().iter().all(|c| feasible.covers_cube(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    fn cover(n: usize, cubes: &[&str]) -> Cover {
        if cubes.is_empty() {
            Cover::empty(n)
        } else {
            Cover::from_cubes(n, cubes.iter().map(|s| c(s)).collect())
        }
    }

    fn check_equiv_on_care(min: &Cover, onset: &Cover, dcset: &Cover) {
        for m in 0..1u64 << onset.num_vars() {
            if dcset.eval(m) {
                continue;
            }
            assert_eq!(min.eval(m), onset.eval(m), "minterm {m:b}");
        }
    }

    #[test]
    fn minimizes_minterm_list_to_single_cube() {
        // f = x0 over 3 vars, given as 4 minterms.
        let onset = cover(3, &["100", "101", "110", "111"]);
        let r = minimize_exact_care(&onset);
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.cover.cubes()[0], c("1--"));
    }

    #[test]
    fn respects_offset() {
        // f = x0 XOR x1 cannot merge.
        let onset = cover(2, &["10", "01"]);
        let r = minimize_exact_care(&onset);
        assert_eq!(r.cover.len(), 2);
        check_equiv_on_care(&r.cover, &onset, &Cover::empty(2));
    }

    #[test]
    fn exploits_dont_cares() {
        // onset {11}, dc {10, 01}: minimizer may emit x0 or x1 (one literal).
        let onset = cover(2, &["11"]);
        let dc = cover(2, &["10", "01"]);
        let r = minimize(&onset, &dc);
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.cover.cubes()[0].num_literals(), 1);
        assert!(is_exact_cover(&r.cover, &onset, &dc));
    }

    #[test]
    fn classic_espresso_example() {
        // The 3-var majority-ish cover that needs reduce to improve:
        // f = a'b' + ab + bc ... use a known-reducible case: f covers
        // everything except 010 and 101? Just validate exactness on a few
        // structured functions.
        let cases: Vec<(Cover, Cover)> = vec![
            (
                cover(3, &["000", "001", "011", "111", "110"]),
                cover(3, &[]),
            ),
            (
                cover(4, &["1100", "1101", "1111", "1110", "0110", "0111"]),
                cover(4, &[]),
            ),
            (cover(4, &["0000", "1111"]), cover(4, &["0001", "1110"])),
        ];
        for (onset, dc) in cases {
            let r = minimize(&onset, &dc);
            assert!(is_exact_cover(&r.cover, &onset, &dc));
            check_equiv_on_care(&r.cover, &onset, &dc);
            assert!(r.cover.len() <= onset.len());
        }
    }

    #[test]
    fn tautology_onset_collapses_to_universal_cube() {
        let onset = cover(3, &["1--", "0--"]);
        let r = minimize_exact_care(&onset);
        assert_eq!(r.cover.len(), 1);
        assert_eq!(r.cover.cubes()[0].num_literals(), 0);
    }

    #[test]
    fn empty_onset_stays_empty() {
        let r = minimize_exact_care(&Cover::empty(3));
        assert!(r.cover.is_empty());
    }

    #[test]
    fn randomized_exactness() {
        // Pseudo-random functions over 5 vars; dc sets too.
        let mut x: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20 {
            let f_bits = next();
            let dc_bits = next() & next(); // sparser dc
            let mut onset = Cover::empty(5);
            let mut dc = Cover::empty(5);
            for m in 0..32u64 {
                if dc_bits >> m & 1 == 1 {
                    dc.push(Cube::minterm(5, m));
                } else if f_bits >> m & 1 == 1 {
                    onset.push(Cube::minterm(5, m));
                }
            }
            if onset.is_empty() {
                continue;
            }
            let r = minimize(&onset, &dc);
            assert!(is_exact_cover(&r.cover, &onset, &dc));
            check_equiv_on_care(&r.cover, &onset, &dc);
        }
    }
}
