//! Common-cube extraction (a `fast_extract` subset).
//!
//! Two-level minimization leaves heavy redundancy *across* functions: FSM
//! next-state and output covers share state-decoding product terms. SIS
//! closes that gap with algebraic extraction; this module implements the
//! single-cube-divisor core of `fx`: repeatedly find the two-literal cube
//! occurring in the most cubes across all covers, introduce it as a new
//! intermediate variable, and substitute. Divisors can themselves contain
//! earlier divisors, so multi-literal factors emerge hierarchically.
//!
//! The transformation is exact by AND-associativity:
//! `l1·l2·rest  =  d·rest` with `d = l1·l2`.

use crate::cover::Cover;
use crate::cube::Cube;
use std::collections::HashMap;

/// One extracted divisor: `var = lit1 AND lit2` over the extended space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divisor {
    /// The variable index the divisor defines.
    pub var: usize,
    /// First literal (variable, polarity).
    pub a: (usize, bool),
    /// Second literal.
    pub b: (usize, bool),
}

/// Result of extraction: rewritten covers over an extended variable space
/// plus the divisor definitions (in dependency order).
#[derive(Debug, Clone)]
pub struct Extraction {
    /// Total variables (original + divisors).
    pub num_vars: usize,
    /// Number of original variables.
    pub num_inputs: usize,
    /// Divisor definitions; `divisors[k].var == num_inputs + k`.
    pub divisors: Vec<Divisor>,
    /// The rewritten covers (same order as the input covers).
    pub covers: Vec<Cover>,
}

impl Extraction {
    /// Evaluates rewritten cover `idx` on an assignment of the *original*
    /// variables, computing divisor values on the fly. Used by tests and
    /// debug assertions.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn eval(&self, idx: usize, input_bits: u64) -> bool {
        let mut bits = input_bits;
        for d in &self.divisors {
            let va = bits >> d.a.0 & 1 == 1;
            let vb = bits >> d.b.0 & 1 == 1;
            if (va == d.a.1) && (vb == d.b.1) {
                bits |= 1 << d.var;
            }
        }
        self.covers[idx].eval(bits)
    }
}

/// Extracts common two-literal cubes across `covers`.
///
/// `max_vars` caps the extended variable space (the [`Cube`] limit is
/// 64); `min_saving` is the minimum number of cube occurrences a divisor
/// must have to be extracted (2 = any reuse).
///
/// # Panics
///
/// Panics if covers disagree on variable count or `num_vars > max_vars`.
#[must_use]
pub fn extract_cubes(
    covers: &[Cover],
    num_vars: usize,
    max_vars: usize,
    min_saving: usize,
) -> Extraction {
    assert!(num_vars <= max_vars && max_vars <= 64);
    for c in covers {
        assert_eq!(c.num_vars(), num_vars, "cover variable-count mismatch");
    }
    // Work over the widened space from the start.
    let widen = |c: &Cube, n: usize| Cube::from_raw(n, c.mask(), c.value());
    let mut work: Vec<Vec<Cube>> = covers
        .iter()
        .map(|c| c.cubes().iter().map(|cu| widen(cu, max_vars)).collect())
        .collect();

    let mut divisors: Vec<Divisor> = Vec::new();
    let mut next_var = num_vars;
    let min_saving = min_saving.max(2);

    while next_var < max_vars {
        // Count all ordered-canonical two-literal pairs.
        type LiteralPair = ((usize, bool), (usize, bool));
        let mut counts: HashMap<LiteralPair, usize> = HashMap::new();
        for cubes in &work {
            for cube in cubes {
                let lits: Vec<(usize, bool)> = (0..next_var)
                    .filter_map(|v| cube.literal(v).map(|p| (v, p)))
                    .collect();
                for i in 0..lits.len() {
                    for j in (i + 1)..lits.len() {
                        *counts.entry((lits[i], lits[j])).or_insert(0) += 1;
                    }
                }
            }
        }
        let Some((&(a, b), &count)) = counts.iter().max_by_key(|&(k, v)| (*v, *k)) else {
            break;
        };
        if count < min_saving {
            break;
        }
        // Introduce d = a AND b and substitute everywhere.
        let var = next_var;
        next_var += 1;
        divisors.push(Divisor { var, a, b });
        for cubes in &mut work {
            for cube in cubes.iter_mut() {
                if cube.literal(a.0) == Some(a.1) && cube.literal(b.0) == Some(b.1) {
                    *cube = cube
                        .without_literal(a.0)
                        .without_literal(b.0)
                        .with_literal(var, true);
                }
            }
        }
    }

    Extraction {
        num_vars: next_var,
        num_inputs: num_vars,
        divisors,
        covers: work
            .into_iter()
            .map(|cubes| {
                Cover::from_cubes(
                    max_vars,
                    cubes
                        .into_iter()
                        .map(|c| Cube::from_raw(max_vars, c.mask(), c.value()))
                        .collect(),
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: usize, s: &str) -> Cube {
        let p: fsm_model::pattern::Pattern = s.parse().unwrap();
        let cube = Cube::from_pattern(&p);
        Cube::from_raw(n, cube.mask(), cube.value())
    }

    #[test]
    fn shared_cube_is_extracted() {
        // f0 = abc + abd ; f1 = abe : "ab" occurs 3 times.
        let covers = vec![
            Cover::from_cubes(5, vec![c(5, "111--"), c(5, "11-1-")]),
            Cover::from_cubes(5, vec![c(5, "11--1")]),
        ];
        let ex = extract_cubes(&covers, 5, 16, 2);
        assert!(!ex.divisors.is_empty());
        let d0 = ex.divisors[0];
        assert_eq!((d0.a, d0.b), ((0, true), (1, true)));
        // Exactness on the whole original space.
        for m in 0..32u64 {
            assert_eq!(ex.eval(0, m), covers[0].eval(m), "f0 at {m:05b}");
            assert_eq!(ex.eval(1, m), covers[1].eval(m), "f1 at {m:05b}");
        }
        // The rewritten cubes are shorter.
        assert!(ex.covers[0].num_literals() < covers[0].num_literals());
    }

    #[test]
    fn hierarchical_divisors_emerge() {
        // Four cubes all sharing abc: extracting ab first, then (d_ab)c.
        let covers = vec![Cover::from_cubes(
            6,
            vec![
                c(6, "111--0"),
                c(6, "1111--"),
                c(6, "111-1-"),
                c(6, "111--1"),
            ],
        )];
        let ex = extract_cubes(&covers, 6, 16, 2);
        assert!(ex.divisors.len() >= 2, "expected ab then ab·c");
        for m in 0..64u64 {
            assert_eq!(ex.eval(0, m), covers[0].eval(m), "at {m:06b}");
        }
    }

    #[test]
    fn negative_literals_extract_too() {
        let covers = vec![Cover::from_cubes(4, vec![c(4, "001-"), c(4, "00-1")])];
        let ex = extract_cubes(&covers, 4, 8, 2);
        assert_eq!(ex.divisors.len(), 1);
        let d = ex.divisors[0];
        assert_eq!(d.a, (0, false));
        assert_eq!(d.b, (1, false));
        for m in 0..16u64 {
            assert_eq!(ex.eval(0, m), covers[0].eval(m));
        }
    }

    #[test]
    fn no_sharing_no_divisors() {
        let covers = vec![Cover::from_cubes(4, vec![c(4, "1---"), c(4, "-0--")])];
        let ex = extract_cubes(&covers, 4, 8, 2);
        assert!(ex.divisors.is_empty());
        assert_eq!(ex.num_vars, 4);
    }

    #[test]
    fn var_budget_is_respected() {
        // Many shareable pairs but only room for one divisor.
        let covers = vec![Cover::from_cubes(
            6,
            vec![
                c(6, "11----"),
                c(6, "11--1-"),
                c(6, "--11--"),
                c(6, "--11-1"),
            ],
        )];
        let ex = extract_cubes(&covers, 6, 7, 2);
        assert_eq!(ex.divisors.len(), 1);
        for m in 0..64u64 {
            assert_eq!(ex.eval(0, m), covers[0].eval(m));
        }
    }

    #[test]
    fn empty_and_constant_covers_survive() {
        let covers = vec![Cover::empty(3), Cover::tautology(3)];
        let ex = extract_cubes(&covers, 3, 8, 2);
        for m in 0..8u64 {
            assert!(!ex.eval(0, m));
            assert!(ex.eval(1, m));
        }
    }
}
