//! Two-level and multi-level logic synthesis substrate.
//!
//! This crate plays the role SIS and the Synplify mapper play in the
//! paper's experimental flow (Fig. 6): it turns an encoded state-transition
//! graph into minimized combinational logic and maps it onto K-input LUTs.
//!
//! * [`cube`] / [`cover`] — bit-packed product terms and SOP covers with
//!   the unate-recursion tautology check;
//! * [`espresso`] — EXPAND/IRREDUNDANT/REDUCE two-level minimization;
//! * [`extract`] — common-cube extraction across functions (fx-lite);
//! * [`truth`] — dense truth tables (LUT contents, equivalence checks);
//! * [`network`] — multi-level boolean networks (the SIS network model);
//! * [`decompose`] — rewrite to 2-bounded AND/OR/NOT form;
//! * [`techmap`] — priority-cut, depth-oriented K-LUT mapping;
//! * [`blif`] — BLIF interchange (read SIS output, write our own);
//! * [`synth`] — the end-to-end STG → minimized logic → LUTs pipeline.
//!
//! # Examples
//!
//! Minimize a function given as minterms:
//!
//! ```
//! use logic_synth::{cover::Cover, cube::Cube, espresso};
//!
//! // f(x0,x1,x2) = x2, listed as four minterms.
//! let onset = Cover::from_cubes(3, (4..8).map(|m| Cube::minterm(3, m)).collect());
//! let result = espresso::minimize_exact_care(&onset);
//! assert_eq!(result.cover.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod blif;
pub mod cover;
pub mod cube;
pub mod decompose;
pub mod espresso;
pub mod extract;
pub mod network;
pub mod synth;
pub mod techmap;
pub mod truth;

pub use cover::Cover;
pub use cube::Cube;
pub use network::{Network, NodeId};
pub use techmap::{Lut, LutNetwork, MapOptions, Signal};
pub use truth::TruthTable;
