//! Multi-level boolean networks.
//!
//! A [`Network`] is a DAG of nodes, each computing a local sum-of-products
//! function ([`Cover`]) over its fanins — the same model SIS uses. Primary
//! inputs are leaf nodes; primary outputs name internal nodes or inputs.
//! The FF-baseline synthesis flow produces one network per FSM containing
//! the next-state and output functions; decomposition and technology
//! mapping then rewrite it toward LUTs.

use crate::cover::Cover;
use crate::truth::TruthTable;
use std::collections::HashMap;
use std::fmt;

/// Index of a node within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as `usize`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A network node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Primary input with a name.
    Input(String),
    /// Constant false/true.
    Constant(bool),
    /// Internal node: SOP over the listed fanins. `cover` variable *i*
    /// refers to `fanins[i]`.
    Logic {
        /// Fanin node ids, in cover-variable order.
        fanins: Vec<NodeId>,
        /// Local function over the fanins.
        cover: Cover,
    },
}

/// Errors produced by network construction or validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A fanin reference points forward or out of range (networks are built
    /// in topological order).
    BadFanin {
        /// Node being constructed.
        node: usize,
        /// Offending fanin.
        fanin: u32,
    },
    /// The cover's variable count disagrees with the fanin count.
    CoverArity {
        /// Node being constructed.
        node: usize,
        /// Number of fanins supplied.
        fanins: usize,
        /// Cover variable count.
        cover_vars: usize,
    },
    /// An output references a nonexistent node.
    BadOutput(String),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadFanin { node, fanin } => {
                write!(f, "node {node} references invalid fanin {fanin}")
            }
            NetworkError::CoverArity {
                node,
                fanins,
                cover_vars,
            } => write!(
                f,
                "node {node} has {fanins} fanins but its cover uses {cover_vars} variables"
            ),
            NetworkError::BadOutput(n) => write!(f, "output {n:?} references unknown node"),
        }
    }
}

impl std::error::Error for NetworkError {}

/// A boolean network in topological order (fanins always precede users).
#[derive(Debug, Clone, Default)]
pub struct Network {
    nodes: Vec<Node>,
    outputs: Vec<(String, NodeId)>,
}

impl Network {
    /// An empty network.
    #[must_use]
    pub fn new() -> Self {
        Network::default()
    }

    /// Adds a primary input; returns its id.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        self.nodes.push(Node::Input(name.into()));
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Adds a constant node.
    pub fn add_constant(&mut self, value: bool) -> NodeId {
        self.nodes.push(Node::Constant(value));
        NodeId((self.nodes.len() - 1) as u32)
    }

    /// Adds a logic node.
    ///
    /// # Errors
    ///
    /// Fails if a fanin is not an earlier node or the cover arity mismatches
    /// the fanin list.
    pub fn add_logic(&mut self, fanins: Vec<NodeId>, cover: Cover) -> Result<NodeId, NetworkError> {
        let idx = self.nodes.len();
        for f in &fanins {
            if f.index() >= idx {
                return Err(NetworkError::BadFanin {
                    node: idx,
                    fanin: f.0,
                });
            }
        }
        if cover.num_vars() != fanins.len() {
            return Err(NetworkError::CoverArity {
                node: idx,
                fanins: fanins.len(),
                cover_vars: cover.num_vars(),
            });
        }
        self.nodes.push(Node::Logic { fanins, cover });
        Ok(NodeId(idx as u32))
    }

    /// Declares a primary output.
    ///
    /// # Errors
    ///
    /// Fails if `node` is out of range.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        node: NodeId,
    ) -> Result<(), NetworkError> {
        let name = name.into();
        if node.index() >= self.nodes.len() {
            return Err(NetworkError::BadOutput(name));
        }
        self.outputs.push((name, node));
        Ok(())
    }

    /// All nodes, in topological order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// A node by id.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Primary outputs as `(name, node)` pairs.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Ids and names of the primary inputs, in creation order.
    pub fn inputs(&self) -> impl Iterator<Item = (NodeId, &str)> {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            Node::Input(name) => Some((NodeId(i as u32), name.as_str())),
            _ => None,
        })
    }

    /// Evaluates every node for the given input assignment.
    ///
    /// `inputs` maps input *creation order* to values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the number of primary inputs.
    #[must_use]
    pub fn eval_all(&self, inputs: &[bool]) -> Vec<bool> {
        let mut values = vec![false; self.nodes.len()];
        let mut input_idx = 0usize;
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                Node::Input(_) => {
                    let v = inputs[input_idx];
                    input_idx += 1;
                    v
                }
                Node::Constant(c) => *c,
                Node::Logic { fanins, cover } => {
                    let mut bits = 0u64;
                    for (k, f) in fanins.iter().enumerate() {
                        if values[f.index()] {
                            bits |= 1 << k;
                        }
                    }
                    cover.eval(bits)
                }
            };
        }
        values
    }

    /// Evaluates just the primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is shorter than the number of primary inputs.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        let values = self.eval_all(inputs);
        self.outputs
            .iter()
            .map(|(_, id)| values[id.index()])
            .collect()
    }

    /// Per-node fanout counts (uses as fanin plus uses as primary output).
    #[must_use]
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            if let Node::Logic { fanins, .. } = node {
                for f in fanins {
                    counts[f.index()] += 1;
                }
            }
        }
        for (_, id) in &self.outputs {
            counts[id.index()] += 1;
        }
        counts
    }

    /// Maximum fanin count over all logic nodes.
    #[must_use]
    pub fn max_fanin(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match n {
                Node::Logic { fanins, .. } => fanins.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Computes the global truth table of each primary output in terms of
    /// the primary inputs (inputs ≤ [`TruthTable::MAX_VARS`]).
    ///
    /// # Panics
    ///
    /// Panics if the network has more inputs than `TruthTable::MAX_VARS`.
    #[must_use]
    pub fn output_truth_tables(&self) -> Vec<TruthTable> {
        let num_inputs = self.inputs().count();
        assert!(
            num_inputs <= TruthTable::MAX_VARS,
            "too many inputs for dense evaluation"
        );
        let mut tables = vec![TruthTable::zeros(num_inputs); self.outputs.len()];
        for m in 0..1u64 << num_inputs {
            let bits: Vec<bool> = (0..num_inputs).map(|i| m >> i & 1 == 1).collect();
            for (o, v) in self.eval(&bits).into_iter().enumerate() {
                tables[o].set(m, v);
            }
        }
        tables
    }

    /// Retains only nodes reachable from the primary outputs (dead-node
    /// sweep). Inputs are always kept so input ordering is stable.
    #[must_use]
    pub fn sweep(&self) -> Network {
        let mut live = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if matches!(n, Node::Input(_)) {
                live[i] = true;
            }
        }
        for (_, id) in &self.outputs {
            live[id.index()] = true;
        }
        for i in (0..self.nodes.len()).rev() {
            if live[i] {
                if let Node::Logic { fanins, .. } = &self.nodes[i] {
                    for f in fanins {
                        live[f.index()] = true;
                    }
                }
            }
        }
        let mut remap: Vec<Option<NodeId>> = vec![None; self.nodes.len()];
        let mut out = Network::new();
        for (i, n) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let new_id = match n {
                Node::Input(name) => out.add_input(name.clone()),
                Node::Constant(v) => out.add_constant(*v),
                Node::Logic { fanins, cover } => {
                    let fs: Vec<NodeId> = fanins
                        .iter()
                        .map(|f| remap[f.index()].expect("fanins processed first"))
                        .collect();
                    out.add_logic(fs, cover.clone())
                        .expect("sweep preserves validity")
                }
            };
            remap[i] = Some(new_id);
        }
        for (name, id) in &self.outputs {
            out.add_output(name.clone(), remap[id.index()].expect("outputs are live"))
                .expect("sweep preserves outputs");
        }
        out
    }
}

/// Helper for building 2-input gates as covers.
pub mod gates {
    use super::Cover;
    use crate::cube::Cube;

    fn cover2(cubes: &[&str]) -> Cover {
        Cover::from_cubes(
            2,
            cubes
                .iter()
                .map(|s| Cube::from_pattern(&s.parse().expect("valid pattern")))
                .collect(),
        )
    }

    /// `a AND b`.
    #[must_use]
    pub fn and2() -> Cover {
        cover2(&["11"])
    }

    /// `a OR b`.
    #[must_use]
    pub fn or2() -> Cover {
        cover2(&["1-", "-1"])
    }

    /// `a XOR b`.
    #[must_use]
    pub fn xor2() -> Cover {
        cover2(&["10", "01"])
    }

    /// `NOT a` (1-variable cover).
    #[must_use]
    pub fn not1() -> Cover {
        Cover::from_cubes(
            1,
            vec![Cube::from_pattern(&"0".parse().expect("valid pattern"))],
        )
    }

    /// Identity buffer (1-variable cover).
    #[must_use]
    pub fn buf1() -> Cover {
        Cover::from_cubes(
            1,
            vec![Cube::from_pattern(&"1".parse().expect("valid pattern"))],
        )
    }
}

/// Lookup of input ids by name.
#[must_use]
pub fn input_map(network: &Network) -> HashMap<String, NodeId> {
    network
        .inputs()
        .map(|(id, name)| (name.to_string(), id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    fn pat(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    #[test]
    fn build_and_eval_full_adder() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cin = net.add_input("cin");
        // sum = a xor b xor cin as a flat SOP.
        let sum_cover = Cover::from_cubes(3, vec![pat("100"), pat("010"), pat("001"), pat("111")]);
        let sum = net.add_logic(vec![a, b, cin], sum_cover).unwrap();
        let carry_cover = Cover::from_cubes(3, vec![pat("11-"), pat("1-1"), pat("-11")]);
        let carry = net.add_logic(vec![a, b, cin], carry_cover).unwrap();
        net.add_output("sum", sum).unwrap();
        net.add_output("carry", carry).unwrap();

        for m in 0..8u32 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1];
            let got = net.eval(&bits);
            let total = u32::from(bits[0]) + u32::from(bits[1]) + u32::from(bits[2]);
            assert_eq!(got[0], total & 1 == 1, "sum at {m}");
            assert_eq!(got[1], total >= 2, "carry at {m}");
        }
    }

    #[test]
    fn forward_fanin_rejected() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let err = net
            .add_logic(vec![a, NodeId(7)], gates::and2())
            .unwrap_err();
        assert!(matches!(err, NetworkError::BadFanin { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let err = net.add_logic(vec![a], gates::and2()).unwrap_err();
        assert!(matches!(err, NetworkError::CoverArity { .. }));
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let live = net.add_logic(vec![a, b], gates::and2()).unwrap();
        let _dead = net.add_logic(vec![a, b], gates::or2()).unwrap();
        net.add_output("y", live).unwrap();
        let swept = net.sweep();
        assert_eq!(swept.len(), 3); // 2 inputs + 1 logic
        for m in 0..4u32 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1];
            assert_eq!(net.eval(&bits), swept.eval(&bits));
        }
    }

    #[test]
    fn output_truth_tables_match_eval() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_logic(vec![a, b], gates::xor2()).unwrap();
        net.add_output("x", x).unwrap();
        let tt = &net.output_truth_tables()[0];
        for m in 0..4u64 {
            let bits = [m & 1 == 1, m >> 1 & 1 == 1];
            assert_eq!(tt.get(m), net.eval(&bits)[0]);
        }
    }

    #[test]
    fn constants_and_fanout() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let one = net.add_constant(true);
        let y = net.add_logic(vec![a, one], gates::and2()).unwrap();
        net.add_output("y", y).unwrap();
        assert_eq!(net.eval(&[true]), vec![true]);
        assert_eq!(net.eval(&[false]), vec![false]);
        let counts = net.fanout_counts();
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[y.index()], 1);
    }

    #[test]
    fn gate_covers_are_correct() {
        assert!(gates::and2().eval(0b11));
        assert!(!gates::and2().eval(0b01));
        assert!(gates::or2().eval(0b10));
        assert!(!gates::or2().eval(0b00));
        assert!(gates::xor2().eval(0b01));
        assert!(!gates::xor2().eval(0b11));
        assert!(gates::not1().eval(0));
        assert!(!gates::not1().eval(1));
    }
}
