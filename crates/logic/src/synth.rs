//! FSM synthesis: the SIS step of the paper's baseline flow.
//!
//! Turns an encoded STG into the combinational next-state and output
//! functions, minimizes each with the espresso engine, and technology-maps
//! the result onto K-LUTs. The output corresponds to the paper's
//! "blif net-list containing the combinatorial portion of the FSM and FFs
//! to store the states" (Sec. 5), and can be exported as exactly that via
//! [`SynthesizedFsm::to_blif`].
//!
//! ## Exactness
//!
//! The synthesized logic implements the *completed* machine semantics of
//! [`fsm_model::stg::Stg::step`] bit-exactly: transitions are disjointified
//! in priority order and the unspecified input space of each state
//! explicitly holds the state with zero outputs. Only genuinely unreachable
//! state codes enter the don't-care set.

use crate::cover::Cover;
use crate::cube::Cube;
use crate::decompose::decompose2;
use crate::espresso;
use crate::network::Network;
use crate::techmap::{map_luts, LutNetwork, MapError, MapOptions};
use fsm_model::encoding::{EncodingStyle, StateEncoding};
use fsm_model::stg::Stg;
use std::fmt;

/// Options controlling FSM synthesis.
#[derive(Debug, Clone, Copy)]
pub struct SynthOptions {
    /// State encoding style.
    pub encoding: EncodingStyle,
    /// Technology-mapping options.
    pub map: MapOptions,
    /// Largest onset (in cubes) fed to the espresso minimizer. Functions
    /// whose onset exceeds this keep their raw flattened cover — still an
    /// exact implementation, just unminimized — and the result is flagged
    /// [`SynthBudget::Exhausted`]. The default is far above any paper
    /// benchmark, so default-option results are unchanged.
    pub max_minimize_cubes: usize,
}

impl SynthOptions {
    /// Default espresso input-size budget (see [`Self::max_minimize_cubes`]).
    pub const DEFAULT_MAX_MINIMIZE_CUBES: usize = 1_000_000;
}

impl Default for SynthOptions {
    fn default() -> Self {
        SynthOptions {
            encoding: EncodingStyle::default(),
            map: MapOptions::default(),
            max_minimize_cubes: Self::DEFAULT_MAX_MINIMIZE_CUBES,
        }
    }
}

/// Whether synthesis stayed within its minimization budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SynthBudget {
    /// Every function was minimized normally.
    #[default]
    Completed,
    /// Some functions exceeded [`SynthOptions::max_minimize_cubes`] and kept
    /// their raw (exact but unminimized) covers.
    Exhausted {
        /// Number of functions whose minimization was skipped.
        skipped_functions: usize,
        /// Cube count of the largest skipped onset.
        largest_onset: usize,
    },
}

impl SynthBudget {
    /// True when any function blew the minimization budget.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        matches!(self, SynthBudget::Exhausted { .. })
    }
}

/// Errors from FSM synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// State bits + inputs exceed the 64-variable cube space.
    TooManyVariables {
        /// State bits required by the encoding.
        state_bits: usize,
        /// FSM inputs.
        inputs: usize,
    },
    /// Technology mapping failed.
    Map(MapError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::TooManyVariables { state_bits, inputs } => write!(
                f,
                "{state_bits} state bits + {inputs} inputs exceed the 64-variable limit"
            ),
            SynthError::Map(e) => write!(f, "technology mapping failed: {e}"),
        }
    }
}

impl std::error::Error for SynthError {}

impl From<MapError> for SynthError {
    fn from(e: MapError) -> Self {
        SynthError::Map(e)
    }
}

/// The synthesized FSM: minimized logic plus its LUT mapping.
///
/// Combinational interface (variable order used everywhere):
/// network PIs are `in_0.. in_{I-1}` then `st_0.. st_{s-1}`;
/// network POs are `out_0.. out_{O-1}` then `st_k$next`.
#[derive(Debug, Clone)]
pub struct SynthesizedFsm {
    /// Source machine name.
    pub name: String,
    /// The state encoding used.
    pub encoding: StateEncoding,
    /// Number of FSM inputs.
    pub num_inputs: usize,
    /// Number of FSM outputs.
    pub num_outputs: usize,
    /// The minimized multi-level network (flat: one SOP node per function).
    pub network: Network,
    /// The K-LUT mapping of [`network`](Self::network).
    pub luts: LutNetwork,
    /// Total cubes across all minimized functions (a synthesis-quality
    /// metric reported by the experiment harness).
    pub total_cubes: usize,
    /// Whether minimization stayed within [`SynthOptions::max_minimize_cubes`].
    pub budget: SynthBudget,
}

impl SynthesizedFsm {
    /// Number of state flip-flops.
    #[must_use]
    pub fn num_state_bits(&self) -> usize {
        self.encoding.num_bits()
    }

    /// One synchronous step evaluated through the *mapped LUT network*:
    /// given the current state code and concrete inputs, returns
    /// `(next_code, outputs)`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the FSM input count.
    #[must_use]
    pub fn step(&self, state_code: u64, inputs: &[bool]) -> (u64, Vec<bool>) {
        assert_eq!(inputs.len(), self.num_inputs, "input width mismatch");
        let s = self.num_state_bits();
        let mut pi: Vec<bool> = Vec::with_capacity(self.num_inputs + s);
        pi.extend_from_slice(inputs);
        pi.extend((0..s).map(|k| state_code >> k & 1 == 1));
        let po = self.luts.eval(&pi);
        let outputs = po[..self.num_outputs].to_vec();
        let mut next = 0u64;
        for k in 0..s {
            if po[self.num_outputs + k] {
                next |= 1 << k;
            }
        }
        (next, outputs)
    }

    /// Exports the synthesized machine as a BLIF model with one latch per
    /// state bit (all initialized to 0 — the reset state's code).
    #[must_use]
    pub fn to_blif(&self) -> crate::blif::BlifModel {
        let s = self.num_state_bits();
        crate::blif::BlifModel {
            name: self.name.clone(),
            inputs: (0..self.num_inputs).map(|j| format!("in_{j}")).collect(),
            outputs: (0..self.num_outputs).map(|j| format!("out_{j}")).collect(),
            latches: (0..s)
                .map(|k| crate::blif::BlifLatch {
                    input: format!("st_{k}$next"),
                    output: format!("st_{k}"),
                    init: false,
                })
                .collect(),
            network: self.network.clone(),
        }
    }
}

/// A disjointified, completed transition: the canonical flat form shared by
/// logic synthesis and memory-content generation.
#[derive(Debug, Clone)]
pub struct FlatTransition {
    /// Source state index.
    pub state: usize,
    /// Disjoint input cube (over the FSM inputs only).
    pub input: Cube,
    /// Destination state index.
    pub next: usize,
    /// Concrete output bits (don't-cares resolved to 0).
    pub outputs: Vec<bool>,
    /// Whether this row came from an explicit transition (`true`) or the
    /// completion rule (`false`).
    pub specified: bool,
}

/// Flattens a machine into disjoint, complete per-state rows honouring the
/// priority and completion rules of [`Stg::step`].
///
/// # Panics
///
/// Panics if the machine has more than 64 inputs.
#[must_use]
pub fn flatten(stg: &Stg) -> Vec<FlatTransition> {
    let mut rows = Vec::new();
    for state in stg.states() {
        let mut remaining = vec![Cube::full(stg.num_inputs())];
        for t in stg.transitions_from(state) {
            let tc = Cube::from_pattern(&t.input);
            let mut next_remaining = Vec::with_capacity(remaining.len());
            for r in remaining {
                if let Some(piece) = r.intersection(&tc) {
                    rows.push(FlatTransition {
                        state: state.index(),
                        input: piece,
                        next: t.to.index(),
                        outputs: t.output.resolve_zero(),
                        specified: true,
                    });
                }
                next_remaining.extend(r.subtract(&tc));
            }
            remaining = next_remaining;
        }
        for r in remaining {
            rows.push(FlatTransition {
                state: state.index(),
                input: r,
                next: state.index(),
                outputs: vec![false; stg.num_outputs()],
                specified: false,
            });
        }
    }
    rows
}

/// Synthesizes the FSM with the given options.
///
/// # Errors
///
/// Fails if the variable space exceeds 64 or technology mapping fails.
pub fn synthesize(stg: &Stg, opts: SynthOptions) -> Result<SynthesizedFsm, SynthError> {
    let encoding = StateEncoding::assign(stg, opts.encoding);
    let s = encoding.num_bits();
    let num_inputs = stg.num_inputs();
    let num_outputs = stg.num_outputs();
    let num_vars = num_inputs + s;
    if num_vars > 64 {
        return Err(SynthError::TooManyVariables {
            state_bits: s,
            inputs: num_inputs,
        });
    }

    // Build onsets: variables are inputs 0..I then state bits I..I+s.
    let rows = flatten(stg);
    let num_funcs = num_outputs + s;
    let mut onsets: Vec<Cover> = vec![Cover::empty(num_vars); num_funcs];
    for row in &rows {
        // Lift the input cube into the full variable space and AND in the
        // state code literals.
        let mut cube = Cube::from_raw(num_vars, row.input.mask(), row.input.value());
        let code = encoding.code(fsm_model::stg::StateId(row.state as u32));
        for k in 0..s {
            cube = cube.with_literal(num_inputs + k, code >> k & 1 == 1);
        }
        let next_code = encoding.code(fsm_model::stg::StateId(row.next as u32));
        for (j, out) in row.outputs.iter().enumerate() {
            if *out {
                onsets[j].push(cube);
            }
        }
        for k in 0..s {
            if next_code >> k & 1 == 1 {
                onsets[num_outputs + k].push(cube);
            }
        }
    }

    // Don't-care set: unreachable state codes (binary/gray only: they are
    // enumerable as the codes ≥ N in a s-bit space).
    let mut dcset = Cover::empty(num_vars);
    if matches!(opts.encoding, EncodingStyle::Binary | EncodingStyle::Gray) {
        let used: std::collections::HashSet<u64> =
            stg.states().map(|st| encoding.code(st)).collect();
        for code in 0..1u64 << s {
            if !used.contains(&code) {
                let mut cube = Cube::full(num_vars);
                for k in 0..s {
                    cube = cube.with_literal(num_inputs + k, code >> k & 1 == 1);
                }
                dcset.push(cube);
            }
        }
    }

    // Minimize each function, then share product terms across all of them
    // with common-cube extraction (the algebraic step SIS adds on top of
    // two-level minimization).
    let mut total_cubes = 0usize;
    let mut skipped_functions = 0usize;
    let mut largest_onset = 0usize;
    let minimized: Vec<Cover> = onsets
        .iter()
        .map(|onset| {
            if onset.len() > opts.max_minimize_cubes {
                // Over budget: keep the raw flattened cover. It is already
                // an exact cover of the onset, just not minimal.
                skipped_functions += 1;
                largest_onset = largest_onset.max(onset.len());
                total_cubes += onset.len();
                return onset.clone();
            }
            let m = espresso::minimize(onset, &dcset).cover;
            debug_assert!(espresso::is_exact_cover(&m, onset, &dcset));
            total_cubes += m.len();
            m
        })
        .collect();
    let max_ext = 64.min(num_vars + 32);
    let extraction = crate::extract::extract_cubes(&minimized, num_vars, max_ext, 3);

    let mut network = Network::new();
    let in_ids: Vec<_> = (0..num_inputs)
        .map(|j| network.add_input(format!("in_{j}")))
        .collect();
    let st_ids: Vec<_> = (0..s)
        .map(|k| network.add_input(format!("st_{k}")))
        .collect();
    // Node for each extended variable: inputs, state bits, then divisors.
    let mut var_ids: Vec<_> = in_ids.iter().chain(st_ids.iter()).copied().collect();
    for d in &extraction.divisors {
        let cover = Cover::from_cubes(
            2,
            vec![Cube::full(2).with_literal(0, d.a.1).with_literal(1, d.b.1)],
        );
        let node = network
            .add_logic(vec![var_ids[d.a.0], var_ids[d.b.0]], cover)
            .expect("divisor fanins exist");
        var_ids.push(node);
    }

    let mut po_nodes = Vec::with_capacity(num_funcs);
    for cover in &extraction.covers {
        let (support, local) = restrict_to_support(cover);
        let node = if local.is_empty() {
            network.add_constant(false)
        } else if local.cubes().iter().any(|c| c.num_literals() == 0) {
            network.add_constant(true)
        } else {
            let fanins: Vec<_> = support.iter().map(|&v| var_ids[v]).collect();
            network
                .add_logic(fanins, local)
                .expect("support-restricted covers are arity-consistent")
        };
        po_nodes.push(node);
    }
    for (j, node) in po_nodes.iter().enumerate() {
        let name = if j < num_outputs {
            format!("out_{j}")
        } else {
            format!("st_{}$next", j - num_outputs)
        };
        network
            .add_output(name, *node)
            .expect("nodes exist in network");
    }

    let two_bounded = decompose2(&network);
    let luts = map_luts(&two_bounded, opts.map)?;

    Ok(SynthesizedFsm {
        name: stg.name().to_string(),
        encoding,
        num_inputs,
        num_outputs,
        network,
        luts,
        total_cubes,
        budget: if skipped_functions > 0 {
            SynthBudget::Exhausted {
                skipped_functions,
                largest_onset,
            }
        } else {
            SynthBudget::Completed
        },
    })
}

/// Rewrites a cover over the global variable space into (support variable
/// list, cover over just the support).
fn restrict_to_support(cover: &Cover) -> (Vec<usize>, Cover) {
    let mut support_mask = 0u64;
    for c in cover.cubes() {
        support_mask |= c.mask();
    }
    let support: Vec<usize> = (0..cover.num_vars())
        .filter(|v| support_mask >> v & 1 == 1)
        .collect();
    let mut local = Cover::empty(support.len());
    for c in cover.cubes() {
        let mut cube = Cube::full(support.len());
        for (new_v, &old_v) in support.iter().enumerate() {
            if let Some(pol) = c.literal(old_v) {
                cube = cube.with_literal(new_v, pol);
            }
        }
        local.push(cube);
    }
    (support, local)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fsm_model::benchmarks::sequence_detector_0101;
    use fsm_model::simulate::StgSimulator;
    use fsm_model::stg::StgBuilder;

    fn lockstep_check(stg: &Stg, style: EncodingStyle, cycles: usize, seed: u64) {
        let synth = synthesize(
            stg,
            SynthOptions {
                encoding: style,
                ..SynthOptions::default()
            },
        )
        .unwrap();
        let mut oracle = StgSimulator::new(stg);
        let mut code = 0u64; // reset code is always 0
        let mut x = seed | 1;
        for cycle in 0..cycles {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let inputs: Vec<bool> = (0..stg.num_inputs()).map(|i| x >> i & 1 == 1).collect();
            let want = oracle.clock(&inputs).to_vec();
            let (next, got) = synth.step(code, &inputs);
            assert_eq!(got, want, "outputs diverged at cycle {cycle} ({style})");
            code = next;
            assert_eq!(
                synth.encoding.decode(code),
                Some(oracle.state()),
                "state diverged at cycle {cycle} ({style})"
            );
        }
    }

    #[test]
    fn detector_synthesizes_equivalently_all_encodings() {
        let stg = sequence_detector_0101();
        for style in [
            EncodingStyle::Binary,
            EncodingStyle::Gray,
            EncodingStyle::OneHotZero,
        ] {
            lockstep_check(&stg, style, 300, 0xfeed);
        }
    }

    #[test]
    fn incompletely_specified_machine_matches_completion_rule() {
        // State A has no transition for input 11: must hold with zero out.
        let mut b = StgBuilder::new("partial", 2, 2);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "0-", c, "10");
        b.transition(a, "10", a, "01");
        b.transition(c, "--", a, "11");
        let stg = b.build().unwrap();
        lockstep_check(&stg, EncodingStyle::Binary, 200, 0xabcd);
    }

    #[test]
    fn priority_overlaps_resolved_like_oracle() {
        let mut b = StgBuilder::new("prio", 1, 1);
        let a = b.state("A");
        let c = b.state("B");
        b.transition(a, "-", c, "1"); // shadows the next row
        b.transition(a, "1", a, "0");
        b.transition(c, "-", a, "0");
        let stg = b.build().unwrap();
        lockstep_check(&stg, EncodingStyle::Binary, 50, 0x1234);
    }

    #[test]
    fn flatten_is_disjoint_and_complete() {
        let stg = sequence_detector_0101();
        let rows = flatten(&stg);
        for s in stg.states() {
            let mine: Vec<&FlatTransition> = rows.iter().filter(|r| r.state == s.index()).collect();
            // Complete: every minterm covered exactly once.
            for m in 0..1u64 << stg.num_inputs() {
                let hits = mine.iter().filter(|r| r.input.contains_minterm(m)).count();
                assert_eq!(hits, 1, "state {s} minterm {m}");
            }
        }
    }

    #[test]
    fn flatten_matches_step() {
        let stg = sequence_detector_0101();
        for row in flatten(&stg) {
            for m in row.input.minterms() {
                let bits: Vec<bool> = (0..stg.num_inputs()).map(|i| m >> i & 1 == 1).collect();
                let (next, out) = stg.step(fsm_model::stg::StateId(row.state as u32), &bits);
                assert_eq!(next.index(), row.next);
                assert_eq!(out, row.outputs);
            }
        }
    }

    #[test]
    fn blif_export_reimports() {
        let stg = sequence_detector_0101();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        let text = crate::blif::write(&synth.to_blif());
        let model = crate::blif::parse(&text).unwrap();
        assert_eq!(model.latches.len(), synth.num_state_bits());
        assert_eq!(model.inputs.len(), 1);
        assert_eq!(model.outputs.len(), 1);
        // Behavioural spot check of the reparsed combinational network:
        // PI order = in_0, st_0, st_1; PO order = out_0, st_0$next, st_1$next.
        // From reset (00) with input 0 we must go to state B (code of B).
        let v = model.network.eval(&[false, false, false]);
        let expect = synth.step(0, &[false]);
        let got_next = u64::from(v[1]) | u64::from(v[2]) << 1;
        assert_eq!(v[0], expect.1[0]);
        assert_eq!(got_next, expect.0);
    }

    #[test]
    fn synthesis_reports_cube_counts() {
        let stg = sequence_detector_0101();
        let synth = synthesize(&stg, SynthOptions::default()).unwrap();
        assert!(synth.total_cubes > 0);
        assert!(synth.luts.num_luts() > 0);
    }

    #[test]
    fn moore_benchmark_synthesizes() {
        let stg = fsm_model::benchmarks::traffic_light();
        lockstep_check(&stg, EncodingStyle::Binary, 200, 0x7777);
    }

    #[test]
    fn minimize_budget_skips_but_stays_exact() {
        let stg = sequence_detector_0101();
        let synth = synthesize(
            &stg,
            SynthOptions {
                max_minimize_cubes: 0,
                ..SynthOptions::default()
            },
        )
        .unwrap();
        assert!(synth.budget.is_exhausted());
        // The raw covers are larger than the minimized ones but still exact:
        // lockstep against the oracle must hold.
        let mut oracle = StgSimulator::new(&stg);
        let mut code = 0u64;
        let mut x = 0x5eedu64;
        for cycle in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let inputs: Vec<bool> = (0..stg.num_inputs()).map(|i| x >> i & 1 == 1).collect();
            let want = oracle.clock(&inputs).to_vec();
            let (next, got) = synth.step(code, &inputs);
            assert_eq!(got, want, "outputs diverged at cycle {cycle}");
            code = next;
        }
        // Default options never trip the budget on paper-scale machines.
        let default = synthesize(&stg, SynthOptions::default()).unwrap();
        assert_eq!(default.budget, SynthBudget::Completed);
        assert!(default.total_cubes <= synth.total_cubes);
    }
}
