//! Technology mapping onto K-input LUTs.
//!
//! Classic cut-based mapping: enumerate K-feasible cuts bottom-up (priority
//! cuts, bounded per node), choose per node the cut minimizing mapped depth
//! with area-flow as tiebreak, then extract the LUT cover from the primary
//! outputs. Constants are absorbed into LUT truth tables.
//!
//! The result is a [`LutNetwork`] — the technology-mapped artifact the FPGA
//! crate packs, places and routes, standing in for the Synplify step of the
//! paper's flow (Fig. 6).

use crate::network::{Network, Node, NodeId};
use crate::truth::TruthTable;
use std::collections::HashMap;
use std::fmt;

/// A signal in a mapped network: a primary input, a LUT output, or a
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Primary input by index.
    Input(usize),
    /// Output of LUT `i`.
    Lut(usize),
    /// Constant value.
    Const(bool),
}

/// One mapped LUT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lut {
    /// Fanin signals, in truth-table variable order.
    pub fanins: Vec<Signal>,
    /// The LUT function over the fanins.
    pub truth: TruthTable,
}

/// A K-LUT network.
#[derive(Debug, Clone, Default)]
pub struct LutNetwork {
    /// Primary input names.
    pub inputs: Vec<String>,
    /// LUTs in topological order (fanins reference earlier LUTs only).
    pub luts: Vec<Lut>,
    /// Primary outputs.
    pub outputs: Vec<(String, Signal)>,
}

impl LutNetwork {
    /// Evaluates the network on one input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.inputs.len()`.
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.inputs.len(), "input width mismatch");
        let mut lut_vals = vec![false; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            let mut idx = 0u64;
            for (k, f) in lut.fanins.iter().enumerate() {
                let v = match *f {
                    Signal::Input(p) => inputs[p],
                    Signal::Lut(l) => lut_vals[l],
                    Signal::Const(c) => c,
                };
                if v {
                    idx |= 1 << k;
                }
            }
            lut_vals[i] = lut.truth.get(idx);
        }
        self.outputs
            .iter()
            .map(|(_, s)| match *s {
                Signal::Input(p) => inputs[p],
                Signal::Lut(l) => lut_vals[l],
                Signal::Const(c) => c,
            })
            .collect()
    }

    /// Logic depth in LUT levels (longest input→output path).
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            d[i] = 1 + lut
                .fanins
                .iter()
                .map(|f| match *f {
                    Signal::Lut(l) => d[l],
                    _ => 0,
                })
                .max()
                .unwrap_or(0);
        }
        self.outputs
            .iter()
            .map(|(_, s)| match *s {
                Signal::Lut(l) => d[l],
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Number of LUTs.
    #[must_use]
    pub fn num_luts(&self) -> usize {
        self.luts.len()
    }
}

impl fmt::Display for LutNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "LutNetwork: {} inputs, {} LUTs, {} outputs, depth {}",
            self.inputs.len(),
            self.luts.len(),
            self.outputs.len(),
            self.depth()
        )
    }
}

/// Mapping options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapOptions {
    /// LUT input count (Virtex-II: 4).
    pub k: usize,
    /// Priority cuts kept per node.
    pub cuts_per_node: usize,
}

impl Default for MapOptions {
    fn default() -> Self {
        MapOptions {
            k: 4,
            cuts_per_node: 8,
        }
    }
}

/// Errors from technology mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// `k` outside the supported 2..=6 range.
    BadK(usize),
    /// A node's fanin count exceeds `k`; run
    /// [`decompose2`](crate::decompose::decompose2) first.
    NodeTooWide {
        /// Offending node.
        node: u32,
        /// Its fanin count.
        fanins: usize,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::BadK(k) => write!(f, "unsupported LUT size k={k} (need 2..=6)"),
            MapError::NodeTooWide { node, fanins } => write!(
                f,
                "node {node} has {fanins} fanins; decompose before mapping"
            ),
        }
    }
}

impl std::error::Error for MapError {}

#[derive(Clone, Debug)]
struct Cut {
    /// Sorted leaf node ids.
    leaves: Vec<NodeId>,
    depth: usize,
    area_flow: f64,
}

/// Maps `network` onto K-input LUTs.
///
/// # Errors
///
/// Fails if `opts.k` is out of range or a node is wider than `k`.
pub fn map_luts(network: &Network, opts: MapOptions) -> Result<LutNetwork, MapError> {
    if !(2..=6).contains(&opts.k) {
        return Err(MapError::BadK(opts.k));
    }
    let n = network.len();
    for (i, node) in network.nodes().iter().enumerate() {
        if let Node::Logic { fanins, .. } = node {
            if fanins.len() > opts.k {
                return Err(MapError::NodeTooWide {
                    node: i as u32,
                    fanins: fanins.len(),
                });
            }
        }
    }

    let fanout = network.fanout_counts();

    // Phase 1: priority-cut enumeration with depth-optimal DP.
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(n);
    let mut best: Vec<usize> = vec![0; n]; // index of chosen cut per node
    for (i, node) in network.nodes().iter().enumerate() {
        let node_cuts = match node {
            Node::Input(_) => vec![Cut {
                leaves: vec![NodeId(i as u32)],
                depth: 0,
                area_flow: 0.0,
            }],
            Node::Constant(_) => vec![Cut {
                leaves: Vec::new(),
                depth: 0,
                area_flow: 0.0,
            }],
            Node::Logic { fanins, .. } => {
                let mut merged: Vec<Cut> = Vec::new();
                // Cross-product of fanin cut sets.
                let fanin_cut_sets: Vec<&Vec<Cut>> =
                    fanins.iter().map(|f| &cuts[f.index()]).collect();
                cross_product(&fanin_cut_sets, opts.k, &mut |leaves| {
                    let depth = 1 + leaves
                        .iter()
                        .map(|l| match network.node(*l) {
                            Node::Input(_) | Node::Constant(_) => 0,
                            Node::Logic { .. } => cuts[l.index()][best[l.index()]].depth,
                        })
                        .max()
                        .unwrap_or(0);
                    let area_flow = 1.0
                        + leaves
                            .iter()
                            .map(|l| match network.node(*l) {
                                Node::Input(_) | Node::Constant(_) => 0.0,
                                Node::Logic { .. } => {
                                    cuts[l.index()][best[l.index()]].area_flow
                                        / fanout[l.index()].max(1) as f64
                                }
                            })
                            .sum::<f64>();
                    merged.push(Cut {
                        leaves: leaves.to_vec(),
                        depth,
                        area_flow,
                    });
                });
                dedup_and_prune(&mut merged, opts.cuts_per_node);
                // The trivial cut {node} lets fanouts treat this node as a
                // leaf; its depth is this node's mapped depth (computed from
                // the best non-trivial cut), so push it after selecting.
                merged
            }
        };
        // Select the best cut (min depth, then min area flow).
        let mut bi = 0usize;
        for (k, c) in node_cuts.iter().enumerate() {
            let b = &node_cuts[bi];
            if (c.depth, c.area_flow) < (b.depth, b.area_flow) {
                bi = k;
            }
        }
        best[i] = bi;
        cuts.push(node_cuts);
        // Append the trivial cut for use by fanouts (never chosen as the
        // node's own implementation).
        if matches!(network.node(NodeId(i as u32)), Node::Logic { .. }) {
            let d = cuts[i][best[i]].depth;
            let af = cuts[i][best[i]].area_flow;
            cuts[i].push(Cut {
                leaves: vec![NodeId(i as u32)],
                depth: d,
                area_flow: af,
            });
        }
    }

    // Phase 2: cover extraction from outputs.
    let mut lut_of_node: HashMap<NodeId, usize> = HashMap::new();
    let mut result = LutNetwork {
        inputs: network.inputs().map(|(_, n)| n.to_string()).collect(),
        luts: Vec::new(),
        outputs: Vec::new(),
    };
    let input_index: HashMap<NodeId, usize> = network
        .inputs()
        .enumerate()
        .map(|(k, (id, _))| (id, k))
        .collect();

    // Required logic nodes, processed so fanin LUTs are created first.
    let mut stack: Vec<NodeId> = network
        .outputs()
        .iter()
        .filter(|(_, id)| matches!(network.node(*id), Node::Logic { .. }))
        .map(|(_, id)| *id)
        .collect();
    while let Some(id) = stack.pop() {
        if lut_of_node.contains_key(&id) {
            continue;
        }
        let cut = &cuts[id.index()][best[id.index()]];
        let pending: Vec<NodeId> = cut
            .leaves
            .iter()
            .copied()
            .filter(|l| {
                matches!(network.node(*l), Node::Logic { .. }) && !lut_of_node.contains_key(l)
            })
            .collect();
        if pending.is_empty() {
            // Build the LUT for this node.
            let fanins: Vec<Signal> = cut
                .leaves
                .iter()
                .map(|l| match network.node(*l) {
                    Node::Input(_) => Signal::Input(input_index[l]),
                    Node::Logic { .. } => Signal::Lut(lut_of_node[l]),
                    Node::Constant(_) => unreachable!("constants are absorbed into cuts"),
                })
                .collect();
            let truth = cone_truth(network, id, &cut.leaves);
            result.luts.push(Lut { fanins, truth });
            lut_of_node.insert(id, result.luts.len() - 1);
        } else {
            // Revisit after the pending leaves are built; the network is a
            // DAG and leaves are strictly earlier nodes, so this terminates.
            stack.push(id);
            stack.extend(pending);
        }
    }

    for (name, id) in network.outputs() {
        let sig = match network.node(*id) {
            Node::Input(_) => Signal::Input(input_index[id]),
            Node::Constant(v) => Signal::Const(*v),
            Node::Logic { .. } => {
                let lut = lut_of_node[id];
                // Zero-input LUT (all-constant cone) folds to a constant.
                if result.luts[lut].fanins.is_empty() {
                    Signal::Const(result.luts[lut].truth.get(0))
                } else {
                    Signal::Lut(lut)
                }
            }
        };
        result.outputs.push((name.clone(), sig));
    }
    Ok(result)
}

/// Enumerates merged leaf sets of the cross product of fanin cut sets,
/// invoking `emit` for each K-feasible merge.
fn cross_product(sets: &[&Vec<Cut>], k: usize, emit: &mut dyn FnMut(&[NodeId])) {
    fn rec(
        sets: &[&Vec<Cut>],
        k: usize,
        idx: usize,
        acc: &mut Vec<NodeId>,
        emit: &mut dyn FnMut(&[NodeId]),
    ) {
        if idx == sets.len() {
            emit(acc);
            return;
        }
        for cut in sets[idx] {
            let before = acc.clone();
            let mut merged: Vec<NodeId> = acc
                .iter()
                .copied()
                .chain(cut.leaves.iter().copied())
                .collect();
            merged.sort_unstable();
            merged.dedup();
            if merged.len() <= k {
                *acc = merged;
                rec(sets, k, idx + 1, acc, emit);
            }
            *acc = before;
        }
    }
    let mut acc = Vec::new();
    rec(sets, k, 0, &mut acc, emit);
}

fn dedup_and_prune(cuts: &mut Vec<Cut>, limit: usize) {
    cuts.sort_by(|a, b| {
        (a.depth, a.area_flow, &a.leaves)
            .partial_cmp(&(b.depth, b.area_flow, &b.leaves))
            .expect("area flow is never NaN")
    });
    cuts.dedup_by(|a, b| a.leaves == b.leaves);
    cuts.truncate(limit);
}

/// Computes the truth table of `root`'s cone as a function of `leaves`.
fn cone_truth(network: &Network, root: NodeId, leaves: &[NodeId]) -> TruthTable {
    let k = leaves.len();
    let mut table = TruthTable::zeros(k);
    for m in 0..1u64 << k {
        let mut memo: HashMap<NodeId, bool> = HashMap::new();
        for (i, l) in leaves.iter().enumerate() {
            memo.insert(*l, m >> i & 1 == 1);
        }
        if eval_cone(network, root, &mut memo) {
            table.set(m, true);
        }
    }
    table
}

fn eval_cone(network: &Network, node: NodeId, memo: &mut HashMap<NodeId, bool>) -> bool {
    if let Some(&v) = memo.get(&node) {
        return v;
    }
    let v = match network.node(node) {
        Node::Input(name) => panic!("cone evaluation reached unbound input {name:?}"),
        Node::Constant(c) => *c,
        Node::Logic { fanins, cover } => {
            let mut bits = 0u64;
            for (i, f) in fanins.iter().enumerate() {
                if eval_cone(network, *f, memo) {
                    bits |= 1 << i;
                }
            }
            cover.eval(bits)
        }
    };
    memo.insert(node, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cover::Cover;
    use crate::cube::Cube;
    use crate::decompose::decompose2;
    use crate::network::gates;

    fn pat(s: &str) -> Cube {
        Cube::from_pattern(&s.parse().unwrap())
    }

    /// 8-input parity: needs multiple LUT levels at k=4.
    fn parity8() -> Network {
        let mut net = Network::new();
        let ins: Vec<NodeId> = (0..8).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut acc = ins[0];
        for &next in &ins[1..] {
            acc = net.add_logic(vec![acc, next], gates::xor2()).unwrap();
        }
        net.add_output("p", acc).unwrap();
        net
    }

    #[test]
    fn parity_maps_correctly() {
        let net = parity8();
        let mapped = map_luts(&net, MapOptions::default()).unwrap();
        assert!(mapped.num_luts() >= 2);
        assert!(mapped.num_luts() <= 4, "k=4 parity8 needs at most 3-4 LUTs");
        assert!(mapped.depth() <= 3);
        for m in 0..256u64 {
            let bits: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(mapped.eval(&bits), net.eval(&bits), "m={m:08b}");
        }
    }

    #[test]
    fn every_lut_is_k_feasible() {
        let net = parity8();
        for k in 2..=6usize {
            let mapped = map_luts(
                &net,
                MapOptions {
                    k,
                    cuts_per_node: 8,
                },
            )
            .unwrap();
            for lut in &mapped.luts {
                assert!(lut.fanins.len() <= k);
                assert_eq!(lut.truth.num_vars(), lut.fanins.len());
            }
        }
    }

    #[test]
    fn decomposed_sop_maps_equivalently() {
        let mut net = Network::new();
        let ins: Vec<NodeId> = (0..7).map(|i| net.add_input(format!("x{i}"))).collect();
        let c1 = Cover::from_cubes(
            7,
            vec![
                pat("11-----"),
                pat("--11---"),
                pat("----111"),
                pat("0-0-0-0"),
            ],
        );
        let y = net.add_logic(ins.clone(), c1).unwrap();
        net.add_output("y", y).unwrap();
        let two = decompose2(&net);
        let mapped = map_luts(&two, MapOptions::default()).unwrap();
        for m in 0..128u64 {
            let bits: Vec<bool> = (0..7).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(mapped.eval(&bits), net.eval(&bits), "m={m:07b}");
        }
    }

    #[test]
    fn small_node_fits_single_lut() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let b = net.add_input("b");
        let y = net.add_logic(vec![a, b], gates::and2()).unwrap();
        net.add_output("y", y).unwrap();
        let mapped = map_luts(&net, MapOptions::default()).unwrap();
        assert_eq!(mapped.num_luts(), 1);
        assert_eq!(mapped.depth(), 1);
    }

    #[test]
    fn constants_are_absorbed() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let one = net.add_constant(true);
        let y = net.add_logic(vec![a, one], gates::and2()).unwrap();
        net.add_output("y", y).unwrap();
        let mapped = map_luts(&net, MapOptions::default()).unwrap();
        // y = a & 1 = a: single LUT with one fanin (or buffered input).
        assert_eq!(mapped.eval(&[true]), vec![true]);
        assert_eq!(mapped.eval(&[false]), vec![false]);
        for lut in &mapped.luts {
            assert!(lut.fanins.iter().all(|f| !matches!(f, Signal::Const(_))));
        }
    }

    #[test]
    fn passthrough_and_constant_outputs() {
        let mut net = Network::new();
        let a = net.add_input("a");
        let k = net.add_constant(false);
        net.add_output("a_out", a).unwrap();
        net.add_output("zero", k).unwrap();
        let mapped = map_luts(&net, MapOptions::default()).unwrap();
        assert_eq!(mapped.num_luts(), 0);
        assert_eq!(mapped.eval(&[true]), vec![true, false]);
    }

    #[test]
    fn too_wide_node_is_rejected() {
        let mut net = Network::new();
        let ins: Vec<NodeId> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
        let c = Cover::from_cubes(5, vec![pat("11111")]);
        let y = net.add_logic(ins, c).unwrap();
        net.add_output("y", y).unwrap();
        let err = map_luts(
            &net,
            MapOptions {
                k: 4,
                cuts_per_node: 8,
            },
        )
        .unwrap_err();
        assert!(matches!(err, MapError::NodeTooWide { .. }));
    }

    #[test]
    fn bad_k_rejected() {
        let net = parity8();
        assert!(matches!(
            map_luts(
                &net,
                MapOptions {
                    k: 1,
                    cuts_per_node: 4
                }
            ),
            Err(MapError::BadK(1))
        ));
        assert!(matches!(
            map_luts(
                &net,
                MapOptions {
                    k: 9,
                    cuts_per_node: 4
                }
            ),
            Err(MapError::BadK(9))
        ));
    }
}
