//! Dense truth tables.
//!
//! Used for LUT initialization contents, for equivalence checking in tests,
//! and for evaluating mapped cones during technology mapping. Supports up
//! to [`TruthTable::MAX_VARS`] variables (16 Mi entries), far beyond any
//! single LUT or FSM cone in this workspace.

use crate::cover::Cover;
use std::fmt;

/// A dense truth table over `num_vars` variables.
///
/// Bit `m` of the table is the function value on the packed assignment `m`
/// (variable *i* is bit *i* of `m`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Maximum supported variable count (2^24 entries = 2 MiB).
    pub const MAX_VARS: usize = 24;

    /// The constant-false table.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    #[must_use]
    pub fn zeros(num_vars: usize) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "too many variables");
        let entries = 1usize << num_vars;
        TruthTable {
            num_vars,
            words: vec![0; entries.div_ceil(64)],
        }
    }

    /// The constant-true table.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    #[must_use]
    pub fn ones(num_vars: usize) -> Self {
        let mut t = Self::zeros(num_vars);
        for w in &mut t.words {
            *w = u64::MAX;
        }
        t.mask_tail();
        t
    }

    /// The projection function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars` or `num_vars > MAX_VARS`.
    #[must_use]
    pub fn variable(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable out of range");
        let mut t = Self::zeros(num_vars);
        for m in 0..1usize << num_vars {
            if m >> var & 1 == 1 {
                t.set(m as u64, true);
            }
        }
        t
    }

    /// Builds the table of a [`Cover`].
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than `MAX_VARS` variables.
    #[must_use]
    pub fn from_cover(cover: &Cover) -> Self {
        let mut t = Self::zeros(cover.num_vars());
        for cube in cover.cubes() {
            for m in cube.minterms() {
                t.set(m, true);
            }
        }
        t
    }

    /// Builds a small table (≤ 6 vars) from packed bits.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    #[must_use]
    pub fn from_bits_u64(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6, "u64 literal tables support at most 6 vars");
        let mut t = Self::zeros(num_vars);
        t.words[0] = bits;
        t.mask_tail();
        t
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of entries (`2^num_vars`).
    #[must_use]
    pub fn num_entries(&self) -> usize {
        1usize << self.num_vars
    }

    /// The function value on a packed assignment.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    #[must_use]
    pub fn get(&self, m: u64) -> bool {
        assert!((m as usize) < self.num_entries(), "minterm out of range");
        self.words[(m / 64) as usize] >> (m % 64) & 1 == 1
    }

    /// Sets the function value on a packed assignment.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn set(&mut self, m: u64, value: bool) {
        assert!((m as usize) < self.num_entries(), "minterm out of range");
        let w = &mut self.words[(m / 64) as usize];
        if value {
            *w |= 1 << (m % 64);
        } else {
            *w &= !(1 << (m % 64));
        }
    }

    /// Number of onset minterms.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// For tables of ≤ 6 variables, the packed 64-bit representation used
    /// by LUT cells.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than 6 variables.
    #[must_use]
    pub fn as_u64(&self) -> u64 {
        assert!(self.num_vars <= 6, "table too wide for u64");
        self.words[0]
    }

    fn mask_tail(&mut self) {
        let entries = self.num_entries();
        if !entries.is_multiple_of(64) {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << (entries % 64)) - 1;
        }
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Entry 0 first (LSB-first), at most 64 entries shown.
        let shown = self.num_entries().min(64);
        for m in 0..shown {
            write!(f, "{}", u8::from(self.get(m as u64)))?;
        }
        if shown < self.num_entries() {
            write!(f, "…")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Cube;

    #[test]
    fn constants() {
        assert_eq!(TruthTable::zeros(3).count_ones(), 0);
        assert_eq!(TruthTable::ones(3).count_ones(), 8);
        assert_eq!(TruthTable::ones(7).count_ones(), 128);
    }

    #[test]
    fn variable_projection() {
        let t = TruthTable::variable(3, 1);
        for m in 0..8u64 {
            assert_eq!(t.get(m), m >> 1 & 1 == 1);
        }
    }

    #[test]
    fn from_cover_matches_eval() {
        let cover = Cover::from_cubes(
            4,
            vec![
                Cube::from_pattern(&"1--0".parse().unwrap()),
                Cube::from_pattern(&"01--".parse().unwrap()),
            ],
        );
        let t = TruthTable::from_cover(&cover);
        for m in 0..16u64 {
            assert_eq!(t.get(m), cover.eval(m));
        }
    }

    #[test]
    fn set_get_roundtrip() {
        let mut t = TruthTable::zeros(5);
        t.set(17, true);
        t.set(3, true);
        t.set(17, false);
        assert!(!t.get(17));
        assert!(t.get(3));
        assert_eq!(t.count_ones(), 1);
    }

    #[test]
    fn u64_packing() {
        let t = TruthTable::from_bits_u64(2, 0b0110); // XOR2
        assert!(!t.get(0));
        assert!(t.get(1));
        assert!(t.get(2));
        assert!(!t.get(3));
        assert_eq!(t.as_u64(), 0b0110);
    }

    #[test]
    fn tail_masking() {
        let t = TruthTable::from_bits_u64(2, u64::MAX);
        assert_eq!(t.as_u64(), 0b1111);
        assert_eq!(t.count_ones(), 4);
    }
}
