//! Switching-activity-driven FPGA power estimation (the XPower role).
//!
//! Implements the functional model the paper relies on (Sec. 2): dynamic
//! power is `½·V²·f·Σ(activity·C)` over all nets, where a net's
//! capacitance grows with its routed wirelength and the programmable
//! switches it crosses; plus clock-network power (per-FF and much larger
//! per-BRAM clock loads — the premise of the Sec. 6 clock-stopping
//! technique), block-RAM access power that scales with the word-lines and
//! data bits in use (the Sec. 5 observation), and a static floor.
//!
//! Default parameters are calibrated so that a representative LUT/FF
//! design splits roughly 60 % interconnect / 16 % logic / 14 % clock, the
//! distribution the paper cites for Virtex-II. Absolute milliwatts are
//! model units, not silicon measurements; every experiment in this
//! workspace compares *ratios* between implementations, which is also what
//! the paper's percentage-savings columns do.

#![warn(missing_docs)]
#![warn(clippy::all)]

use fpga_fabric::netlist::{Cell, NetId, Netlist};
use fpga_fabric::route::RoutedDesign;
use netsim::engine::Activity;

/// Electrical parameters of the power model.
///
/// Capacitances are in pF, voltage in volts, frequency in MHz, producing
/// microwatts internally and milliwatts in reports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Core supply voltage (Virtex-II: 1.5 V).
    pub vdd: f64,
    /// Base capacitance of any routed net (driver + local wiring).
    pub c_net_base: f64,
    /// Capacitance per fanout pin.
    pub c_pin: f64,
    /// Capacitance per routed tile hop (wire segment).
    pub c_wire_per_hop: f64,
    /// Capacitance per programmable switch crossed.
    pub c_switch: f64,
    /// Internal LUT capacitance switched per output toggle.
    pub c_lut_internal: f64,
    /// Clock-network capacitance per flip-flop load.
    pub c_clock_per_ff: f64,
    /// Clock-network capacitance per BRAM load (much larger than a FF's —
    /// "more power is consumed in clocking a blockram than an FF in a
    /// Virtex-II device", Sec. 6).
    pub c_clock_per_bram: f64,
    /// Fixed clock-spine capacitance when any load exists.
    pub c_clock_spine: f64,
    /// BRAM access energy: fixed part per enabled cycle.
    pub c_bram_access_base: f64,
    /// BRAM access energy per word-line (row) in use.
    pub c_bram_per_row: f64,
    /// BRAM access energy per data bit in use.
    pub c_bram_per_bit: f64,
    /// Pad capacitance per top-level port toggle.
    pub c_pad: f64,
    /// Device static (quiescent) power in mW.
    pub static_mw: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            vdd: 1.5,
            c_net_base: 1.6,
            c_pin: 0.6,
            c_wire_per_hop: 1.1,
            c_switch: 0.7,
            c_lut_internal: 2.4,
            c_clock_per_ff: 0.45,
            c_clock_per_bram: 14.0,
            c_clock_spine: 3.0,
            c_bram_access_base: 8.0,
            c_bram_per_row: 0.012,
            c_bram_per_bit: 0.5,
            c_pad: 4.0,
            static_mw: 15.0,
        }
    }
}

/// An estimated power breakdown, in milliwatts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerReport {
    /// Programmable-interconnect switching power.
    pub interconnect_mw: f64,
    /// Logic (LUT-internal) switching power.
    pub logic_mw: f64,
    /// Clock-distribution power (tree + FF loads + BRAM clock loads,
    /// scaled by each BRAM's enable duty cycle).
    pub clock_mw: f64,
    /// Block-RAM access power (scaled by enable duty cycle).
    pub bram_mw: f64,
    /// I/O pad power.
    pub io_mw: f64,
    /// Static power floor.
    pub static_mw: f64,
    /// Clock frequency this estimate used (MHz).
    pub freq_mhz: f64,
}

impl PowerReport {
    /// Total dynamic power (everything but static), mW.
    #[must_use]
    pub fn dynamic_mw(&self) -> f64 {
        self.interconnect_mw + self.logic_mw + self.clock_mw + self.bram_mw + self.io_mw
    }

    /// Total power, mW.
    #[must_use]
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw() + self.static_mw
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2} mW @ {:.0} MHz (int {:.2}, logic {:.2}, clk {:.2}, bram {:.2}, io {:.2}, static {:.2})",
            self.total_mw(),
            self.freq_mhz,
            self.interconnect_mw,
            self.logic_mw,
            self.clock_mw,
            self.bram_mw,
            self.io_mw,
            self.static_mw
        )
    }
}

/// The activity record handed to [`estimate`] was recorded on a different
/// netlist: its per-net toggle vector does not cover the nets being
/// estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActivityMismatch {
    /// Nets covered by the activity record.
    pub activity_nets: usize,
    /// Nets in the netlist under estimation.
    pub netlist_nets: usize,
}

impl std::fmt::Display for ActivityMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "activity record covers {} nets but the netlist has {}",
            self.activity_nets, self.netlist_nets
        )
    }
}

impl std::error::Error for ActivityMismatch {}

/// Estimates the power of a routed design given recorded activity.
///
/// `freq_mhz` is the clock frequency; activity factors are per-cycle, so
/// dynamic power scales linearly with frequency (the paper's Table 2
/// trend).
///
/// # Errors
///
/// Returns [`ActivityMismatch`] when `activity` was recorded on a
/// different netlist (per-net toggle count differs from the net count).
pub fn estimate(
    netlist: &Netlist,
    routed: &RoutedDesign,
    activity: &Activity,
    freq_mhz: f64,
    params: &PowerParams,
) -> Result<PowerReport, ActivityMismatch> {
    if activity.toggles.len() != netlist.num_nets() {
        return Err(ActivityMismatch {
            activity_nets: activity.toggles.len(),
            netlist_nets: netlist.num_nets(),
        });
    }
    // ½·V²·f · Σ activity·C, with C in pF and f in MHz -> µW.
    let half_v2_f = 0.5 * params.vdd * params.vdd * freq_mhz;
    let uw_to_mw = 1e-3;

    let fanout = netlist.fanout_map();
    let driver = netlist.driver_map();

    let mut interconnect_uw = 0.0;
    for (i, sinks) in fanout.iter().enumerate() {
        let net = NetId(i as u32);
        let a = activity.of(net);
        if a == 0.0 {
            continue;
        }
        let c = params.c_net_base
            + params.c_pin * sinks.len() as f64
            + params.c_wire_per_hop * routed.wirelength(net) as f64
            + params.c_switch * routed.switches(net) as f64;
        interconnect_uw += half_v2_f * a * c;
    }

    let mut logic_uw = 0.0;
    for cell in netlist.cells() {
        if let Cell::Lut { output, .. } = cell {
            logic_uw += half_v2_f * activity.of(*output) * params.c_lut_internal;
        }
    }

    // Clock: the clock net toggles twice per cycle (activity 2.0).
    let mut clock_cap = 0.0;
    let mut bram_idx = 0usize;
    let mut any_load = false;
    for cell in netlist.cells() {
        match cell {
            Cell::Ff { .. } => {
                // CE does not gate the Virtex-II FF clock pin: full load.
                clock_cap += params.c_clock_per_ff;
                any_load = true;
            }
            Cell::Bram { .. } => {
                // Driving EN low stops the BRAM from being clocked
                // (Sec. 6): its clock load scales with enable duty.
                clock_cap += params.c_clock_per_bram * activity.bram_enable_fraction(bram_idx);
                bram_idx += 1;
                any_load = true;
            }
            _ => {}
        }
    }
    if any_load {
        clock_cap += params.c_clock_spine;
    }
    let clock_uw = half_v2_f * 2.0 * clock_cap;

    // BRAM access power.
    let mut bram_uw = 0.0;
    let mut bram_idx = 0usize;
    for cell in netlist.cells() {
        if let Cell::Bram { addr, dout, .. } = cell {
            // Word-lines in use: 2^(address bits not tied to constants).
            let live_addr_bits = addr
                .iter()
                .filter(|n| {
                    driver
                        .get(n)
                        .is_none_or(|c| !matches!(netlist.cell(*c), Cell::Const { .. }))
                })
                .count();
            let rows = (1u64 << live_addr_bits.min(63)) as f64;
            let c_access = params.c_bram_access_base
                + params.c_bram_per_row * rows
                + params.c_bram_per_bit * dout.len() as f64;
            // Writes through the second port cost an access each, too.
            let duty =
                activity.bram_enable_fraction(bram_idx) + activity.bram_write_fraction(bram_idx);
            bram_uw += half_v2_f * duty * c_access;
            bram_idx += 1;
        }
    }

    // I/O pads.
    let mut io_uw = 0.0;
    for (_, net) in netlist.inputs().iter().chain(netlist.outputs()) {
        io_uw += half_v2_f * activity.of(*net) * params.c_pad;
    }

    Ok(PowerReport {
        interconnect_mw: interconnect_uw * uw_to_mw,
        logic_mw: logic_uw * uw_to_mw,
        clock_mw: clock_uw * uw_to_mw,
        bram_mw: bram_uw * uw_to_mw,
        io_mw: io_uw * uw_to_mw,
        static_mw: params.static_mw,
        freq_mhz,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::device::{BramShape, Device};
    use fpga_fabric::netlist::Cell;
    use fpga_fabric::pack::pack;
    use fpga_fabric::place::{place, PlaceOptions};
    use fpga_fabric::route::{route, RouteOptions};
    use netsim::engine::Simulator;
    use netsim::stimulus;

    fn flow(netlist: &Netlist, cycles: usize) -> (RoutedDesign, Activity) {
        let p = pack(netlist);
        let pl = place(netlist, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let r = route(netlist, &p, &pl, RouteOptions::default()).unwrap();
        let mut sim = Simulator::new(netlist).unwrap();
        let stim = stimulus::random(netlist.inputs().len(), cycles, 11);
        sim.run(stim);
        let act = sim.activity().clone();
        (r, act)
    }

    /// A LUT/FF design with lots of active logic: a ripple counter.
    fn busy_logic(n_bits: usize) -> Netlist {
        let mut n = Netlist::new("busy");
        let en = n.add_net("en");
        n.add_input("en", en);
        let qs: Vec<NetId> = (0..n_bits).map(|i| n.add_net(format!("q{i}"))).collect();
        let mut carry = en;
        for (i, &q) in qs.iter().enumerate() {
            let d = n.add_net(format!("d{i}"));
            let c = n.add_net(format!("c{i}"));
            // d = q ^ carry ; next carry = q & carry.
            n.add_cell(Cell::Lut {
                inputs: vec![q, carry],
                output: d,
                truth: 0b0110,
            });
            n.add_cell(Cell::Lut {
                inputs: vec![q, carry],
                output: c,
                truth: 0b1000,
            });
            n.add_cell(Cell::Ff {
                d,
                q,
                ce: None,
                init: false,
            });
            carry = c;
        }
        n.add_output("msb", qs[n_bits - 1]);
        n
    }

    fn bram_fsm(with_en: bool) -> Netlist {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("bramfsm");
        let input = n.add_net("in");
        n.add_input("in", input);
        let dout: Vec<NetId> = (0..3).map(|i| n.add_net(format!("d{i}"))).collect();
        let zero = n.add_net("zero");
        n.add_cell(Cell::Const {
            output: zero,
            value: false,
        });
        // addr = [d0, d1, in, 0, 0, ...]: a 4-state ROM FSM.
        let mut addr = vec![dout[0], dout[1], input];
        while addr.len() < 9 {
            addr.push(zero);
        }
        let mut init = vec![0u64; 512];
        for (a, word) in init.iter_mut().take(8).enumerate() {
            *word = ((a as u64 + 1) % 4) | ((a as u64) % 2) << 2;
        }
        let en = if with_en {
            let e = n.add_net("en");
            n.add_input("en", e);
            Some(e)
        } else {
            None
        };
        n.add_cell(Cell::Bram {
            shape,
            addr,
            dout: dout.clone(),
            en,
            init,
            output_init: 0,
            write: None,
        });
        n.add_output("o", dout[2]);
        n
    }

    #[test]
    fn power_scales_linearly_with_frequency() {
        let n = busy_logic(8);
        let (r, a) = flow(&n, 500);
        let p = PowerParams::default();
        let p50 = estimate(&n, &r, &a, 50.0, &p).unwrap();
        let p100 = estimate(&n, &r, &a, 100.0, &p).unwrap();
        let ratio = p100.dynamic_mw() / p50.dynamic_mw();
        assert!((ratio - 2.0).abs() < 1e-9, "dynamic power ∝ f, got {ratio}");
        assert_eq!(p50.static_mw, p100.static_mw);
    }

    /// 32-bit LFSR plus a 96-LUT XOR mixing network: high activity, spread
    /// over many CLBs — a representative "busy" Virtex-II design.
    fn lfsr_mix() -> Netlist {
        let mut n = Netlist::new("lfsr");
        let bits = 32usize;
        let qs: Vec<NetId> = (0..bits).map(|i| n.add_net(format!("q{i}"))).collect();
        let fb = n.add_net("fb");
        let mut parity4 = 0u64;
        for m in 0..16u64 {
            if m.count_ones() & 1 == 1 {
                parity4 |= 1 << m;
            }
        }
        n.add_cell(Cell::Lut {
            inputs: vec![qs[31], qs[21], qs[1], qs[0]],
            output: fb,
            truth: parity4,
        });
        n.add_cell(Cell::Ff {
            d: fb,
            q: qs[0],
            ce: None,
            init: true,
        });
        for i in 1..bits {
            n.add_cell(Cell::Ff {
                d: qs[i - 1],
                q: qs[i],
                ce: None,
                init: i % 3 == 0,
            });
        }
        for k in 0..96usize {
            let o = n.add_net(format!("m{k}"));
            let taps = [
                qs[(k * 7) % bits],
                qs[(k * 13 + 5) % bits],
                qs[(k * 17 + 11) % bits],
                qs[(k * 23 + 2) % bits],
            ];
            n.add_cell(Cell::Lut {
                inputs: taps.to_vec(),
                output: o,
                truth: parity4,
            });
            let q = n.add_net(format!("mq{k}"));
            n.add_cell(Cell::Ff {
                d: o,
                q,
                ce: None,
                init: false,
            });
            if k % 8 == 0 {
                n.add_output(format!("mq{k}"), q);
            }
        }
        n
    }

    #[test]
    fn breakdown_matches_virtex_profile() {
        // Representative LUT/FF design: the paper cites ~60% interconnect,
        // 16% logic, 14% clock for Virtex-II (Sec. 2).
        let n = lfsr_mix();
        let (r, a) = flow(&n, 1000);
        let rep = estimate(&n, &r, &a, 100.0, &PowerParams::default()).unwrap();
        let dyn_mw = rep.dynamic_mw();
        let int_frac = rep.interconnect_mw / dyn_mw;
        let logic_frac = rep.logic_mw / dyn_mw;
        let clk_frac = rep.clock_mw / dyn_mw;
        assert!(
            (0.45..0.80).contains(&int_frac),
            "interconnect {int_frac:.2} should dominate (~0.60)"
        );
        assert!(
            (0.05..0.30).contains(&logic_frac),
            "logic share {logic_frac:.2} (~0.16)"
        );
        assert!(
            (0.05..0.30).contains(&clk_frac),
            "clock share {clk_frac:.2} (~0.14)"
        );
    }

    #[test]
    fn bram_clock_load_exceeds_ff() {
        let p = PowerParams::default();
        assert!(p.c_clock_per_bram > 5.0 * p.c_clock_per_ff);
    }

    #[test]
    fn gated_bram_saves_clock_and_access_power() {
        let n = bram_fsm(true);
        let p = pack(&n);
        let pl = place(&n, &p, Device::xc2v250(), PlaceOptions::default()).unwrap();
        let r = route(&n, &p, &pl, RouteOptions::default()).unwrap();

        // Always enabled.
        let mut sim = Simulator::new(&n).unwrap();
        for v in stimulus::random(1, 400, 5) {
            sim.clock(&[v[0], true]);
        }
        let busy = estimate(&n, &r, sim.activity(), 100.0, &PowerParams::default()).unwrap();

        // Enabled 25% of the time.
        let mut sim = Simulator::new(&n).unwrap();
        for (i, v) in stimulus::random(1, 400, 5).into_iter().enumerate() {
            sim.clock(&[v[0], i % 4 == 0]);
        }
        let gated = estimate(&n, &r, sim.activity(), 100.0, &PowerParams::default()).unwrap();

        assert!(gated.clock_mw < busy.clock_mw, "clock power must drop");
        assert!(gated.bram_mw < busy.bram_mw * 0.5, "access power must drop");
    }

    #[test]
    fn constant_address_pins_reduce_rows_used() {
        // A BRAM with constants on high address bits must report lower
        // access power than one with all 9 bits live.
        let n_const = bram_fsm(false);
        let (r, a) = flow(&n_const, 300);
        let low = estimate(&n_const, &r, &a, 100.0, &PowerParams::default()).unwrap();

        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("live");
        let input = n.add_net("in");
        n.add_input("in", input);
        let dout: Vec<NetId> = (0..3).map(|i| n.add_net(format!("d{i}"))).collect();
        let addr: Vec<NetId> = (0..9)
            .map(|i| if i == 0 { dout[0] } else { input })
            .collect();
        n.add_cell(Cell::Bram {
            shape,
            addr,
            dout: dout.clone(),
            en: None,
            init: vec![1; 512],
            output_init: 0,
            write: None,
        });
        n.add_output("o", dout[0]);
        let (r2, a2) = flow(&n, 300);
        let high = estimate(&n, &r2, &a2, 100.0, &PowerParams::default()).unwrap();
        assert!(high.bram_mw > low.bram_mw, "more live rows, more power");
    }

    #[test]
    fn foreign_activity_is_a_typed_error() {
        // An activity record from a different netlist must be rejected
        // with ActivityMismatch, not a panic.
        let n = busy_logic(4);
        let (r, _) = flow(&n, 50);
        let other = busy_logic(8);
        let (_, foreign) = flow(&other, 50);
        let err = estimate(&n, &r, &foreign, 100.0, &PowerParams::default()).unwrap_err();
        assert_eq!(err.netlist_nets, n.num_nets());
        assert_eq!(err.activity_nets, other.num_nets());
        assert!(err.to_string().contains("activity record"), "{err}");
    }

    #[test]
    fn report_display_and_totals() {
        let n = busy_logic(4);
        let (r, a) = flow(&n, 100);
        let rep = estimate(&n, &r, &a, 85.0, &PowerParams::default()).unwrap();
        let total = rep.total_mw();
        assert!(total > rep.dynamic_mw());
        let s = rep.to_string();
        assert!(s.contains("mW @ 85 MHz"), "{s}");
    }
}
