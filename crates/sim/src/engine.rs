//! Cycle-based netlist simulation with switching-activity capture.
//!
//! Plays the role of the paper's post-place-and-route ModelSim run: the
//! design is simulated "for a large number of random inputs" and the
//! per-net switching activity is recorded (their `.vcd` file) for the
//! power estimator.
//!
//! ## Timing model
//!
//! Two-valued, cycle-accurate, glitch-free: each call to
//! [`Simulator::clock`] first applies the new primary inputs and settles
//! combinational logic (the state present at the rising edge), then clocks
//! the sequential cells (FF `d`/`ce`, BRAM `addr`/`en` sampled from that
//! settled state) and settles again. Toggle counts accumulate the
//! transitions of both settle phases — the transition count a zero-delay
//! VCD would contain.

use crate::schedule::{write_data_mask, Schedule};
use fpga_fabric::netlist::{Cell, NetId, Netlist, NetlistError};

/// Per-net switching-activity record.
#[derive(Debug, Clone, Default)]
pub struct Activity {
    /// Toggles observed per net.
    pub toggles: Vec<u64>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Cycles in which each BRAM was enabled (indexed like the netlist's
    /// BRAM cells, in cell order). Drives BRAM access power.
    pub bram_active_cycles: Vec<u64>,
    /// Cycles in which each FF had its clock-enable asserted (cell order).
    pub ff_active_cycles: Vec<u64>,
    /// Cycles in which each BRAM's write port performed a write (cell
    /// order; always 0 for BRAMs without a write port).
    pub bram_write_cycles: Vec<u64>,
}

impl Activity {
    /// Average toggles per cycle for a net (switching activity).
    #[must_use]
    pub fn of(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the `i`-th BRAM was enabled.
    #[must_use]
    pub fn bram_enable_fraction(&self, i: usize) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.bram_active_cycles[i] as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the `i`-th BRAM performed a write.
    #[must_use]
    pub fn bram_write_fraction(&self, i: usize) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.bram_write_cycles[i] as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles the `i`-th FF was enabled.
    #[must_use]
    pub fn ff_enable_fraction(&self, i: usize) -> f64 {
        if self.cycles == 0 {
            1.0
        } else {
            self.ff_active_cycles[i] as f64 / self.cycles as f64
        }
    }
}

/// A cycle-based simulator over a validated [`Netlist`].
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// The levelized evaluation schedule (shared with the bit-parallel
    /// kernel, so both engines walk cells in the same order).
    sched: Schedule,
    /// Settled net values.
    values: Vec<bool>,
    /// Per-simulator memory images (BRAMs are writable at run time
    /// through their optional second port).
    bram_mem: Vec<Vec<u64>>,
    activity: Activity,
    pre_edge_outputs: Vec<bool>,
}

impl<'a> Simulator<'a> {
    /// Builds a simulator; validates the netlist.
    ///
    /// The initial state has all primary inputs low, FFs at their `init`
    /// values, BRAM output latches at `output_init`, and combinational
    /// logic settled.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let sched = Schedule::build(netlist)?;
        let bram_mem: Vec<Vec<u64>> = sched
            .brams
            .iter()
            .map(|id| match netlist.cell(*id) {
                Cell::Bram { init, .. } => init.clone(),
                _ => unreachable!("bram list holds BRAMs"),
            })
            .collect();
        let mut sim = Simulator {
            netlist,
            values: vec![false; netlist.num_nets()],
            activity: Activity {
                toggles: vec![0; netlist.num_nets()],
                cycles: 0,
                bram_active_cycles: vec![0; sched.brams.len()],
                ff_active_cycles: vec![0; sched.ffs.len()],
                bram_write_cycles: vec![0; sched.brams.len()],
            },
            sched,
            bram_mem,
            pre_edge_outputs: Vec::new(),
        };
        sim.apply_reset_state();
        sim.settle();
        Ok(sim)
    }

    fn apply_reset_state(&mut self) {
        for id in &self.sched.ffs {
            if let Cell::Ff { q, init, .. } = self.netlist.cell(*id) {
                self.values[q.index()] = *init;
            }
        }
        for id in &self.sched.brams {
            if let Cell::Bram {
                dout, output_init, ..
            } = self.netlist.cell(*id)
            {
                for (k, d) in dout.iter().enumerate() {
                    self.values[d.index()] = output_init >> k & 1 == 1;
                }
            }
        }
    }

    /// Resets the machine state (FF/BRAM latches), restores the original
    /// memory images, and clears activity.
    pub fn reset(&mut self) {
        for (k, id) in self.sched.brams.iter().enumerate() {
            if let Cell::Bram { init, .. } = self.netlist.cell(*id) {
                self.bram_mem[k] = init.clone();
            }
        }
        self.values = vec![false; self.netlist.num_nets()];
        self.apply_reset_state();
        self.settle();
        self.activity = Activity {
            toggles: vec![0; self.netlist.num_nets()],
            cycles: 0,
            bram_active_cycles: vec![0; self.sched.brams.len()],
            ff_active_cycles: vec![0; self.sched.ffs.len()],
            bram_write_cycles: vec![0; self.sched.brams.len()],
        };
    }

    fn settle(&mut self) {
        for id in &self.sched.comb_order {
            match self.netlist.cell(*id) {
                Cell::Lut {
                    inputs,
                    output,
                    truth,
                } => {
                    let mut idx = 0u64;
                    for (k, net) in inputs.iter().enumerate() {
                        if self.values[net.index()] {
                            idx |= 1 << k;
                        }
                    }
                    self.values[output.index()] = truth >> idx & 1 == 1;
                }
                Cell::Const { output, value } => {
                    self.values[output.index()] = *value;
                }
                _ => unreachable!("comb order contains only combinational cells"),
            }
        }
    }

    /// Current value of a net.
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.index()]
    }

    /// Current values of the top-level outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.values[n.index()])
            .collect()
    }

    /// The top-level output values observed just before the most recent
    /// clock edge (after the new inputs settled). This is the sample point
    /// for designs with *unregistered* (combinational Mealy) outputs, e.g.
    /// the FF-based FSM baseline; [`Self::outputs`] after [`Self::clock`]
    /// is the sample point for registered-output designs like the BRAM
    /// FSM. Empty before the first clock.
    #[must_use]
    pub fn pre_edge_outputs(&self) -> &[bool] {
        &self.pre_edge_outputs
    }

    /// Advances one clock cycle with the given primary-input values;
    /// returns the new settled top-level outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn clock(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(
            inputs.len(),
            self.netlist.inputs().len(),
            "input width mismatch"
        );
        // Phase A: apply the new primary inputs and settle — the state the
        // sequential elements see at the rising edge.
        let before_inputs = self.values.clone();
        for ((_, net), v) in self.netlist.inputs().iter().zip(inputs) {
            self.values[net.index()] = *v;
        }
        self.settle();
        for (i, (old, new)) in before_inputs.iter().zip(&self.values).enumerate() {
            if old != new {
                self.activity.toggles[i] += 1;
            }
        }
        let at_edge = self.values.clone();
        self.pre_edge_outputs = self.outputs();

        // Phase B: the rising edge. Sample FF d/ce and BRAM addr/en from
        // the settled pre-edge state.
        let mut ff_next: Vec<Option<bool>> = Vec::with_capacity(self.sched.ffs.len());
        for (k, id) in self.sched.ffs.iter().enumerate() {
            if let Cell::Ff { d, ce, .. } = self.netlist.cell(*id) {
                let enabled = ce.is_none_or(|c| at_edge[c.index()]);
                if enabled {
                    self.activity.ff_active_cycles[k] += 1;
                    ff_next.push(Some(at_edge[d.index()]));
                } else {
                    ff_next.push(None);
                }
            }
        }
        let mut bram_next: Vec<Option<u64>> = Vec::with_capacity(self.sched.brams.len());
        let mut bram_writes: Vec<Option<(usize, u64, u64)>> = Vec::with_capacity(self.sched.brams.len());
        for (k, id) in self.sched.brams.iter().enumerate() {
            if let Cell::Bram {
                addr, en, write, ..
            } = self.netlist.cell(*id)
            {
                let enabled = en.is_none_or(|e| at_edge[e.index()]);
                if enabled {
                    self.activity.bram_active_cycles[k] += 1;
                    let mut a = 0usize;
                    for (bit, net) in addr.iter().enumerate() {
                        if at_edge[net.index()] {
                            a |= 1 << bit;
                        }
                    }
                    // Read-first: the read samples the pre-write contents.
                    bram_next.push(Some(self.bram_mem[k][a]));
                } else {
                    bram_next.push(None);
                }
                // The write port operates independently of the read enable.
                let w = write.as_ref().and_then(|w| {
                    if !at_edge[w.we.index()] {
                        return None;
                    }
                    let mut a = 0usize;
                    for (bit, net) in w.addr.iter().enumerate() {
                        if at_edge[net.index()] {
                            a |= 1 << bit;
                        }
                    }
                    let mut word = 0u64;
                    for (bit, net) in w.data.iter().enumerate() {
                        if at_edge[net.index()] {
                            word |= 1 << bit;
                        }
                    }
                    Some((a, word, write_data_mask(w.data.len())))
                });
                bram_writes.push(w);
            }
        }
        for (k, w) in bram_writes.iter().enumerate() {
            if let Some((a, word, mask)) = w {
                let old = self.bram_mem[k][*a];
                self.bram_mem[k][*a] = (old & !mask) | (word & mask);
                self.activity.bram_write_cycles[k] += 1;
            }
        }

        // Update sequential outputs and settle the post-edge state.
        for (id, next) in self.sched.ffs.iter().zip(&ff_next) {
            if let (Cell::Ff { q, .. }, Some(v)) = (self.netlist.cell(*id), next) {
                self.values[q.index()] = *v;
            }
        }
        for (id, next) in self.sched.brams.iter().zip(&bram_next) {
            if let (Cell::Bram { dout, .. }, Some(word)) = (self.netlist.cell(*id), next) {
                for (bit, net) in dout.iter().enumerate() {
                    self.values[net.index()] = word >> bit & 1 == 1;
                }
            }
        }
        self.settle();
        for (i, (old, new)) in at_edge.iter().zip(&self.values).enumerate() {
            if old != new {
                self.activity.toggles[i] += 1;
            }
        }
        self.activity.cycles += 1;
        self.outputs()
    }

    /// Runs a full stimulus; returns the per-cycle output trace.
    pub fn run<I>(&mut self, stimulus: I) -> Vec<Vec<bool>>
    where
        I: IntoIterator<Item = Vec<bool>>,
    {
        stimulus.into_iter().map(|inp| self.clock(&inp)).collect()
    }

    /// The recorded switching activity so far.
    #[must_use]
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::device::BramShape;
    use fpga_fabric::netlist::Cell;

    /// 2-bit binary counter with enable (LUT-based).
    fn counter() -> Netlist {
        let mut n = Netlist::new("cnt");
        let en = n.add_net("en");
        let q0 = n.add_net("q0");
        let q1 = n.add_net("q1");
        let d0 = n.add_net("d0");
        let d1 = n.add_net("d1");
        n.add_input("en", en);
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        n.add_cell(Cell::Lut {
            inputs: vec![q0, en],
            output: d0,
            truth: 0b0110,
        });
        let mut t = 0u64;
        for m in 0..8u64 {
            let (q1v, q0v, env) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            if q1v ^ (q0v && env) {
                t |= 1 << m;
            }
        }
        n.add_cell(Cell::Lut {
            inputs: vec![q1, q0, en],
            output: d1,
            truth: t,
        });
        n.add_cell(Cell::Ff {
            d: d0,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Ff {
            d: d1,
            q: q1,
            ce: None,
            init: false,
        });
        n
    }

    #[test]
    fn counter_counts() {
        let n = counter();
        let mut sim = Simulator::new(&n).unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            let out = sim.clock(&[true]);
            seen.push(u8::from(out[0]) | u8::from(out[1]) << 1);
        }
        assert_eq!(seen, vec![1, 2, 3, 0, 1]);
    }

    #[test]
    fn enable_freezes_counter() {
        let n = counter();
        let mut sim = Simulator::new(&n).unwrap();
        sim.clock(&[true]);
        let frozen = sim.outputs();
        for _ in 0..3 {
            sim.clock(&[false]);
            assert_eq!(sim.outputs(), frozen, "en=0 must hold the count");
        }
        sim.clock(&[true]);
        assert_ne!(sim.outputs(), frozen);
    }

    #[test]
    fn bram_rom_reads() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rom");
        let a0 = n.add_net("a0");
        let mut addr = vec![a0];
        for i in 1..9 {
            let net = n.add_net(format!("a{i}"));
            addr.push(net);
        }
        let d: Vec<_> = (0..8).map(|i| n.add_net(format!("d{i}"))).collect();
        for (i, net) in addr.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        for (i, net) in d.iter().enumerate() {
            n.add_output(format!("d{i}"), *net);
        }
        let mut init = vec![0u64; 512];
        init[0] = 0xAB;
        init[5] = 0x5A;
        n.add_cell(Cell::Bram {
            shape,
            addr,
            dout: d,
            en: None,
            init,
            output_init: 0,
            write: None,
        });
        let mut sim = Simulator::new(&n).unwrap();
        // Address 5 settles before the edge; the synchronous read latches
        // mem[5] at that edge.
        let addr5: Vec<bool> = (0..9).map(|i| i == 0 || i == 2).collect();
        let out = sim.clock(&addr5);
        let byte = out
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i));
        assert_eq!(byte, 0x5A);
    }

    #[test]
    fn bram_enable_holds_output() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rom_en");
        let en = n.add_net("en");
        let addr: Vec<_> = (0..9).map(|i| n.add_net(format!("a{i}"))).collect();
        let d = n.add_net("d0");
        n.add_input("en", en);
        for (i, net) in addr.iter().enumerate() {
            n.add_input(format!("a{i}"), *net);
        }
        n.add_output("d0", d);
        let mut init = vec![0u64; 512];
        init[1] = 1;
        n.add_cell(Cell::Bram {
            shape,
            addr,
            dout: vec![d],
            en: Some(en),
            init,
            output_init: 0,
            write: None,
        });
        let mut sim = Simulator::new(&n).unwrap();
        // en low: output stays at output_init despite the address.
        let mut inp = vec![false; 10];
        inp[1] = true; // a0 = 1 -> address 1
        sim.clock(&inp);
        sim.clock(&inp);
        assert_eq!(sim.outputs(), vec![false], "disabled BRAM holds");
        // Raise en: the read happens at this edge.
        inp[0] = true;
        sim.clock(&inp);
        assert_eq!(sim.outputs(), vec![true]);
        let act = sim.activity();
        assert_eq!(act.cycles, 3);
        assert_eq!(act.bram_active_cycles[0], 1);
    }

    #[test]
    fn activity_counts_toggles() {
        let n = counter();
        let mut sim = Simulator::new(&n).unwrap();
        for _ in 0..8 {
            sim.clock(&[true]);
        }
        let act = sim.activity();
        // q0 toggles every cycle; q1 every second cycle.
        let q0 = NetId(1);
        let q1 = NetId(2);
        assert!(
            (act.of(q0) - 1.0).abs() < 1e-9,
            "q0 activity {}",
            act.of(q0)
        );
        assert!(
            (act.of(q1) - 0.5).abs() < 1e-9,
            "q1 activity {}",
            act.of(q1)
        );
        // en toggled once (false -> true on the first cycle).
        assert_eq!(act.toggles[0], 1);
    }

    #[test]
    fn reset_clears_state_and_activity() {
        let n = counter();
        let mut sim = Simulator::new(&n).unwrap();
        sim.clock(&[true]);
        sim.clock(&[true]);
        sim.reset();
        assert_eq!(sim.outputs(), vec![false, false]);
        assert_eq!(sim.activity().cycles, 0);
        let out = sim.clock(&[true]);
        assert_eq!(out, vec![true, false]);
    }

    #[test]
    fn write_port_updates_memory_and_counts() {
        use fpga_fabric::netlist::BramWrite;
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rw");
        let raddr: Vec<_> = (0..9).map(|i| n.add_net(format!("ra{i}"))).collect();
        let waddr: Vec<_> = (0..9).map(|i| n.add_net(format!("wa{i}"))).collect();
        let wdata = n.add_net("wd");
        let we = n.add_net("we");
        let d = n.add_net("d0");
        for (i, net) in raddr.iter().enumerate() {
            n.add_input(format!("ra{i}"), *net);
        }
        for (i, net) in waddr.iter().enumerate() {
            n.add_input(format!("wa{i}"), *net);
        }
        n.add_input("wd", wdata);
        n.add_input("we", we);
        n.add_output("d0", d);
        n.add_cell(Cell::Bram {
            shape,
            addr: raddr,
            dout: vec![d],
            en: None,
            init: vec![0; 512],
            output_init: 0,
            write: Some(BramWrite {
                addr: waddr,
                data: vec![wdata],
                we,
            }),
        });
        let mut sim = Simulator::new(&n).unwrap();
        // Cycle 1: write 1 to address 3 while reading address 3 -> the
        // read is read-first and still returns 0.
        let mut inp = vec![false; 20];
        inp[0] = true; // ra0
        inp[1] = true; // ra1 -> read addr 3
        inp[9] = true; // wa0
        inp[10] = true; // wa1 -> write addr 3
        inp[18] = true; // wd = 1
        inp[19] = true; // we
        sim.clock(&inp);
        assert_eq!(sim.outputs(), vec![false], "read-first on collision");
        // Cycle 2: read address 3 again without writing -> sees the 1.
        inp[19] = false;
        sim.clock(&inp);
        assert_eq!(sim.outputs(), vec![true]);
        assert_eq!(sim.activity().bram_write_cycles[0], 1);
        // Reset restores the original zeros.
        sim.reset();
        sim.clock(&inp);
        assert_eq!(sim.outputs(), vec![false]);
    }

    #[test]
    fn ff_ce_gating_counts() {
        let mut n = Netlist::new("ce");
        let ce = n.add_net("ce");
        let d = n.add_net("d");
        let q = n.add_net("q");
        n.add_input("ce", ce);
        n.add_input("d", d);
        n.add_output("q", q);
        n.add_cell(Cell::Ff {
            d,
            q,
            ce: Some(ce),
            init: false,
        });
        let mut sim = Simulator::new(&n).unwrap();
        sim.clock(&[false, true]); // ce low at the edge: hold
        assert_eq!(sim.outputs(), vec![false]);
        sim.clock(&[true, true]); // ce high: capture d=1
        assert_eq!(sim.outputs(), vec![true]);
        assert_eq!(sim.activity().ff_active_cycles[0], 1);
    }
}
