//! 64-lane bit-parallel netlist evaluation.
//!
//! Each net is represented by one `u64` word whose bit *i* carries the
//! value of that net in lane *i* — 64 independent simulations of the same
//! netlist advance together on every [`BatchSimulator::clock_words`] call.
//! LUTs are evaluated word-wide by mux-reducing their (per-lane) truth
//! leaves with the input words, FFs with a masked select, and BRAM output
//! latches by a per-lane address gather. Toggle counts come from
//! `popcount(prev ^ next)` per net, masked to the active lanes.
//!
//! The kernel shares its evaluation order and sequential-cell inventory
//! with the scalar [`crate::engine::Simulator`] through
//! [`crate::schedule::Schedule`], and is required to be bit-exact against
//! it lane for lane — the scalar engine remains the differential-testing
//! oracle (see the workspace's kernel property suite).
//!
//! Lanes can diverge in three ways beyond their inputs, which is what the
//! batched consumers build on:
//!
//! * per-lane architectural state ([`BatchSimulator::load_lane_state`]) —
//!   the exhaustive product-walk verifier loads 64 frontier states and
//!   expands them under one clock;
//! * per-lane LUT truth tables ([`BatchSimulator::flip_lane_truth`]) and
//!   BRAM contents ([`BatchSimulator::flip_lane_bram_init`]) — the fault
//!   campaign runs 64 seeded single-fault variants of one design per
//!   batch;
//! * per-lane BRAM memory images evolve independently once a write port
//!   fires (copy-on-write from the shared ROM image).

use crate::engine::Activity;
use crate::schedule::{write_data_mask, Schedule};
use fpga_fabric::netlist::{Cell, NetId, Netlist, NetlistError};

/// Number of independent simulations carried per net word.
pub const LANES: usize = 64;

/// A combinational cell, pre-compiled for word-wide evaluation.
#[derive(Debug, Clone)]
enum CombOp {
    /// A LUT as a balanced mux tree over its truth leaves. `leaves[m]`
    /// holds, in bit *i*, entry `m` of lane *i*'s truth table — per-lane
    /// truth tables cost nothing beyond this layout.
    Lut {
        inputs: Vec<NetId>,
        output: NetId,
        leaves: Vec<u64>,
    },
    /// A constant driver, broadcast to every lane.
    Const { output: NetId, word: u64 },
}

/// One BRAM's memory, shared across lanes until a lane diverges.
#[derive(Debug, Clone)]
enum BramMem {
    /// All lanes read the same image (`depth` words) — the ROM case.
    Shared(Vec<u64>),
    /// Lane-major per-lane images (`LANES * depth` words, lane `l`'s word
    /// for address `a` at `l * depth + a`).
    PerLane(Vec<u64>),
}

impl BramMem {
    fn word(&self, depth: usize, lane: usize, addr: usize) -> u64 {
        match self {
            BramMem::Shared(image) => image[addr],
            BramMem::PerLane(image) => image[lane * depth + addr],
        }
    }

    /// Expands a shared image to per-lane copies (no-op when already
    /// per-lane).
    fn make_per_lane(&mut self, depth: usize) {
        if let BramMem::Shared(image) = self {
            let mut per_lane = Vec::with_capacity(LANES * depth);
            for _ in 0..LANES {
                per_lane.extend_from_slice(image);
            }
            *self = BramMem::PerLane(per_lane);
        }
    }
}

/// A 64-lane bit-parallel simulator over a validated [`Netlist`].
///
/// Construction mirrors [`crate::engine::Simulator::new`]: every lane
/// starts at the reset state (FF `init` values, BRAM output latches at
/// `output_init`, combinational logic settled). The [`Activity`] record
/// accumulates per-lane-cycle counts over the lanes selected by
/// [`Self::set_active`]; with a single active lane it is bit-identical to
/// the scalar engine's record for the same stimulus.
#[derive(Debug, Clone)]
pub struct BatchSimulator<'a> {
    netlist: &'a Netlist,
    sched: Schedule,
    /// Word-compiled combinational cells, in `sched.comb_order` order.
    ops: Vec<CombOp>,
    /// Cell index → index into `ops` (combinational cells only).
    op_of_cell: Vec<Option<usize>>,
    /// Cell index → ordinal in `sched.brams` (BRAM cells only).
    bram_of_cell: Vec<Option<usize>>,
    /// One word per net; bit `i` is lane `i`'s value.
    words: Vec<u64>,
    /// Per-BRAM memory, in `sched.brams` order.
    mem: Vec<BramMem>,
    /// Lanes whose activity is accumulated.
    active: u64,
    activity: Activity,
    /// Per-output-port lane words sampled just before the last edge.
    pre_edge_words: Vec<u64>,
    /// Scratch copies of `words` reused across clocks (no per-cycle
    /// allocation).
    scratch_before: Vec<u64>,
    scratch_at_edge: Vec<u64>,
    /// Scratch mux-reduction buffer (max `2^6` leaves).
    scratch_leaves: [u64; 64],
}

impl<'a> BatchSimulator<'a> {
    /// Builds a batch simulator; validates and levelizes the netlist.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from validation.
    pub fn new(netlist: &'a Netlist) -> Result<Self, NetlistError> {
        let sched = Schedule::build(netlist)?;
        let mut ops = Vec::with_capacity(sched.comb_order.len());
        let mut op_of_cell = vec![None; netlist.cells().len()];
        for id in &sched.comb_order {
            let op = match netlist.cell(*id) {
                Cell::Lut {
                    inputs,
                    output,
                    truth,
                } => {
                    let leaves = (0..1usize << inputs.len())
                        .map(|m| {
                            if truth >> m & 1 == 1 {
                                u64::MAX
                            } else {
                                0
                            }
                        })
                        .collect();
                    CombOp::Lut {
                        inputs: inputs.clone(),
                        output: *output,
                        leaves,
                    }
                }
                Cell::Const { output, value } => CombOp::Const {
                    output: *output,
                    word: if *value { u64::MAX } else { 0 },
                },
                // `Schedule::build` puts only combinational cells in
                // `comb_order`; a sequential cell here is a schedule bug.
                _ => unreachable!("comb order contains only combinational cells"),
            };
            op_of_cell[id.index()] = Some(ops.len());
            ops.push(op);
        }
        let mut bram_of_cell = vec![None; netlist.cells().len()];
        let mem: Vec<BramMem> = sched
            .brams
            .iter()
            .enumerate()
            .map(|(k, id)| {
                bram_of_cell[id.index()] = Some(k);
                match netlist.cell(*id) {
                    Cell::Bram { init, .. } => BramMem::Shared(init.clone()),
                    _ => unreachable!("bram list holds BRAMs"),
                }
            })
            .collect();
        let num_nets = netlist.num_nets();
        let mut sim = BatchSimulator {
            netlist,
            activity: Activity {
                toggles: vec![0; num_nets],
                cycles: 0,
                bram_active_cycles: vec![0; sched.brams.len()],
                ff_active_cycles: vec![0; sched.ffs.len()],
                bram_write_cycles: vec![0; sched.brams.len()],
            },
            sched,
            ops,
            op_of_cell,
            bram_of_cell,
            words: vec![0; num_nets],
            mem,
            active: u64::MAX,
            pre_edge_words: Vec::new(),
            scratch_before: vec![0; num_nets],
            scratch_at_edge: vec![0; num_nets],
            scratch_leaves: [0; 64],
        };
        sim.apply_reset_state();
        sim.settle();
        Ok(sim)
    }

    /// The nets that define the architectural state (FF `q` and BRAM
    /// `dout`, in netlist cell order) — the layout of
    /// [`Self::lane_state`] / [`Self::load_lane_state`] vectors.
    #[must_use]
    pub fn seq_nets(&self) -> &[NetId] {
        &self.sched.seq_nets
    }

    /// True when any BRAM has a write port: lane state then includes
    /// memory contents that [`Self::lane_state`] does not capture.
    #[must_use]
    pub fn has_write_ports(&self) -> bool {
        self.sched.has_write_ports
    }

    /// Selects which lanes accumulate [`Activity`] counts.
    pub fn set_active(&mut self, mask: u64) {
        self.active = mask;
    }

    fn apply_reset_state(&mut self) {
        for word in &mut self.words {
            *word = 0;
        }
        for id in &self.sched.ffs {
            if let Cell::Ff { q, init, .. } = self.netlist.cell(*id) {
                self.words[q.index()] = if *init { u64::MAX } else { 0 };
            }
        }
        for id in &self.sched.brams {
            if let Cell::Bram {
                dout, output_init, ..
            } = self.netlist.cell(*id)
            {
                for (k, d) in dout.iter().enumerate() {
                    self.words[d.index()] = if output_init >> k & 1 == 1 {
                        u64::MAX
                    } else {
                        0
                    };
                }
            }
        }
    }

    /// Resets every lane to the architectural reset state, restores the
    /// original memory images (dropping per-lane divergence), and clears
    /// the activity record — the batch analogue of
    /// [`crate::engine::Simulator::reset`]. Per-lane truth-table edits are
    /// **not** undone (they model a different netlist, not run-time
    /// state).
    pub fn reset(&mut self) {
        for (k, id) in self.sched.brams.iter().enumerate() {
            if let Cell::Bram { init, .. } = self.netlist.cell(*id) {
                self.mem[k] = BramMem::Shared(init.clone());
            }
        }
        self.apply_reset_state();
        self.settle();
        self.activity = Activity {
            toggles: vec![0; self.netlist.num_nets()],
            cycles: 0,
            bram_active_cycles: vec![0; self.sched.brams.len()],
            ff_active_cycles: vec![0; self.sched.ffs.len()],
            bram_write_cycles: vec![0; self.sched.brams.len()],
        };
        self.pre_edge_words.clear();
    }

    /// One word-wide pass over the levelized combinational cone.
    fn settle(&mut self) {
        for op in &self.ops {
            match op {
                CombOp::Lut {
                    inputs,
                    output,
                    leaves,
                } => {
                    let mut n = leaves.len();
                    self.scratch_leaves[..n].copy_from_slice(leaves);
                    for net in inputs {
                        let sel = self.words[net.index()];
                        n /= 2;
                        for i in 0..n {
                            let lo = self.scratch_leaves[2 * i];
                            let hi = self.scratch_leaves[2 * i + 1];
                            self.scratch_leaves[i] = lo ^ ((lo ^ hi) & sel);
                        }
                    }
                    self.words[output.index()] = self.scratch_leaves[0];
                }
                CombOp::Const { output, word } => {
                    self.words[output.index()] = *word;
                }
            }
        }
    }

    /// Current lane word of a net (bit `i` = lane `i`).
    ///
    /// # Panics
    ///
    /// Panics if the net id is out of range.
    #[must_use]
    pub fn word(&self, net: NetId) -> u64 {
        self.words[net.index()]
    }

    /// Current value of a net in one lane.
    ///
    /// # Panics
    ///
    /// Panics if the net id or lane is out of range.
    #[must_use]
    pub fn lane_value(&self, net: NetId, lane: usize) -> bool {
        debug_assert!(lane < LANES);
        self.words[net.index()] >> lane & 1 == 1
    }

    /// Overrides a single lane's value of a net. Combinational nets are
    /// recomputed at the next settle; use this to seed per-lane sequential
    /// state (e.g. a flipped FF power-on value).
    ///
    /// # Panics
    ///
    /// Panics if the net id or lane is out of range.
    pub fn set_lane_value(&mut self, net: NetId, lane: usize, value: bool) {
        debug_assert!(lane < LANES);
        let bit = 1u64 << lane;
        if value {
            self.words[net.index()] |= bit;
        } else {
            self.words[net.index()] &= !bit;
        }
    }

    /// One lane's architectural state: the values of [`Self::seq_nets`].
    #[must_use]
    pub fn lane_state(&self, lane: usize) -> Vec<bool> {
        self.sched
            .seq_nets
            .iter()
            .map(|n| self.lane_value(*n, lane))
            .collect()
    }

    /// Loads one lane's architectural state (layout of
    /// [`Self::seq_nets`]). Combinational nets are left stale; the next
    /// [`Self::clock_words`] re-settles them before anything samples
    /// them, so `load` + `clock` is exactly a scalar restore-and-clock.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from `seq_nets().len()`.
    pub fn load_lane_state(&mut self, lane: usize, state: &[bool]) {
        assert_eq!(
            state.len(),
            self.sched.seq_nets.len(),
            "state width mismatch"
        );
        debug_assert!(lane < LANES);
        let bit = 1u64 << lane;
        for (i, v) in state.iter().enumerate() {
            let idx = self.sched.seq_nets[i].index();
            if *v {
                self.words[idx] |= bit;
            } else {
                self.words[idx] &= !bit;
            }
        }
    }

    /// Flips one truth-table bit of a LUT cell in a single lane — the
    /// batched form of a `FlipLutTruthBit` fault injection.
    ///
    /// # Errors
    ///
    /// Returns a message when `cell_index` is not a LUT or `bit` is out of
    /// range for its input count.
    pub fn flip_lane_truth(
        &mut self,
        cell_index: usize,
        lane: usize,
        bit: u32,
    ) -> Result<(), String> {
        let Some(op_idx) = self.op_of_cell.get(cell_index).copied().flatten() else {
            return Err(format!("cell {cell_index} is not combinational"));
        };
        match &mut self.ops[op_idx] {
            CombOp::Lut { leaves, .. } => {
                let Some(leaf) = leaves.get_mut(bit as usize) else {
                    return Err(format!("truth bit {bit} out of range"));
                };
                *leaf ^= 1u64 << lane;
                Ok(())
            }
            CombOp::Const { .. } => Err(format!("cell {cell_index} is a constant, not a LUT")),
        }
    }

    /// Flips one bit of one word of a BRAM's memory image in a single lane
    /// — the batched form of a `FlipBramInitBit` fault injection. The
    /// shared image is expanded to per-lane copies on first use.
    ///
    /// # Errors
    ///
    /// Returns a message when `cell_index` is not a BRAM or `word` is out
    /// of range.
    pub fn flip_lane_bram_init(
        &mut self,
        cell_index: usize,
        lane: usize,
        word: usize,
        bit: u32,
    ) -> Result<(), String> {
        let Some(k) = self.bram_of_cell.get(cell_index).copied().flatten() else {
            return Err(format!("cell {cell_index} is not a BRAM"));
        };
        let depth = match self.netlist.cell(self.sched.brams[k]) {
            Cell::Bram { init, .. } => init.len(),
            _ => return Err(format!("cell {cell_index} is not a BRAM")),
        };
        if word >= depth {
            return Err(format!("word {word} out of range for depth {depth}"));
        }
        self.mem[k].make_per_lane(depth);
        if let BramMem::PerLane(image) = &mut self.mem[k] {
            image[lane * depth + word] ^= 1u64 << bit;
        }
        Ok(())
    }

    /// Lane words of the top-level outputs, in declaration order.
    #[must_use]
    pub fn output_words(&self) -> Vec<u64> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.words[n.index()])
            .collect()
    }

    /// One lane's top-level output values, in declaration order.
    #[must_use]
    pub fn lane_outputs(&self, lane: usize) -> Vec<bool> {
        self.netlist
            .outputs()
            .iter()
            .map(|(_, n)| self.lane_value(*n, lane))
            .collect()
    }

    /// One lane's output values just before the most recent clock edge
    /// (the sample point for combinational Mealy outputs). Empty before
    /// the first clock.
    #[must_use]
    pub fn lane_pre_edge_outputs(&self, lane: usize) -> Vec<bool> {
        self.pre_edge_words
            .iter()
            .map(|w| w >> lane & 1 == 1)
            .collect()
    }

    /// Advances all 64 lanes one clock cycle. `inputs` holds one lane
    /// word per primary input, in declaration order (bit `i` of word `k`
    /// is lane `i`'s value for input `k`).
    ///
    /// The two-phase semantics mirror the scalar engine exactly: apply
    /// inputs, settle, count toggles against the pre-input values; sample
    /// FF `d`/`ce` and BRAM `addr`/`en`/write pins from that at-edge
    /// state; update the sequential outputs (read-first on write
    /// collisions); settle again and count toggles against the at-edge
    /// values. Activity is masked to the active lanes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the netlist's input count.
    pub fn clock_words(&mut self, inputs: &[u64]) {
        assert_eq!(
            inputs.len(),
            self.netlist.inputs().len(),
            "input width mismatch"
        );
        // Phase A: apply the new primary inputs and settle.
        self.scratch_before.copy_from_slice(&self.words);
        for ((_, net), w) in self.netlist.inputs().iter().zip(inputs) {
            self.words[net.index()] = *w;
        }
        self.settle();
        for (i, old) in self.scratch_before.iter().enumerate() {
            self.activity.toggles[i] +=
                u64::from(((old ^ self.words[i]) & self.active).count_ones());
        }
        self.scratch_at_edge.copy_from_slice(&self.words);
        self.pre_edge_words = self.output_words();

        // Phase B: the rising edge. Everything samples the at-edge
        // snapshot, so update order cannot leak mid-edge values.
        for (k, id) in self.sched.ffs.iter().enumerate() {
            if let Cell::Ff { d, q, ce, .. } = self.netlist.cell(*id) {
                let en = ce.map_or(u64::MAX, |c| self.scratch_at_edge[c.index()]);
                self.activity.ff_active_cycles[k] += u64::from((en & self.active).count_ones());
                let dw = self.scratch_at_edge[d.index()];
                let qw = self.scratch_at_edge[q.index()];
                self.words[q.index()] = (qw & !en) | (dw & en);
            }
        }
        for (k, id) in self.sched.brams.iter().enumerate() {
            if let Cell::Bram {
                addr,
                dout,
                en,
                init,
                write,
                ..
            } = self.netlist.cell(*id)
            {
                let depth = init.len();
                let en_word = en.map_or(u64::MAX, |e| self.scratch_at_edge[e.index()]);
                self.activity.bram_active_cycles[k] +=
                    u64::from((en_word & self.active).count_ones());
                // Read-first: gather each enabled lane's word from the
                // pre-write memory and scatter it into the dout words.
                // Disabled lanes hold their latches.
                let mut dout_words: Vec<u64> =
                    dout.iter().map(|d| self.words[d.index()]).collect();
                let mut lanes = en_word;
                while lanes != 0 {
                    let lane = lanes.trailing_zeros() as usize;
                    lanes &= lanes - 1;
                    let mut a = 0usize;
                    for (bit, net) in addr.iter().enumerate() {
                        a |= ((self.scratch_at_edge[net.index()] >> lane & 1) as usize) << bit;
                    }
                    let word = self.mem[k].word(depth, lane, a);
                    let lane_bit = 1u64 << lane;
                    for (bit, dw) in dout_words.iter_mut().enumerate() {
                        if word >> bit & 1 == 1 {
                            *dw |= lane_bit;
                        } else {
                            *dw &= !lane_bit;
                        }
                    }
                }
                // The write port operates independently of the read
                // enable. Any write diverges the lanes' memories.
                if let Some(w) = write {
                    let we_word = self.scratch_at_edge[w.we.index()];
                    if we_word != 0 {
                        self.mem[k].make_per_lane(depth);
                        let mask = write_data_mask(w.data.len());
                        let mut lanes = we_word;
                        while lanes != 0 {
                            let lane = lanes.trailing_zeros() as usize;
                            lanes &= lanes - 1;
                            let mut a = 0usize;
                            for (bit, net) in w.addr.iter().enumerate() {
                                a |= ((self.scratch_at_edge[net.index()] >> lane & 1) as usize)
                                    << bit;
                            }
                            let mut data = 0u64;
                            for (bit, net) in w.data.iter().enumerate() {
                                data |= (self.scratch_at_edge[net.index()] >> lane & 1) << bit;
                            }
                            if let BramMem::PerLane(image) = &mut self.mem[k] {
                                let old = image[lane * depth + a];
                                image[lane * depth + a] = (old & !mask) | (data & mask);
                            }
                        }
                    }
                    self.activity.bram_write_cycles[k] +=
                        u64::from((we_word & self.active).count_ones());
                }
                for (dw, d) in dout_words.iter().zip(dout) {
                    self.words[d.index()] = *dw;
                }
            }
        }
        self.settle();
        for (i, old) in self.scratch_at_edge.iter().enumerate() {
            self.activity.toggles[i] +=
                u64::from(((old ^ self.words[i]) & self.active).count_ones());
        }
        self.activity.cycles += u64::from(self.active.count_ones());
    }

    /// Advances one clock with per-lane input rows (`rows[i]` drives lane
    /// `i`; at most [`LANES`] rows). Lanes beyond `rows.len()` receive
    /// all-zero inputs.
    ///
    /// # Panics
    ///
    /// Panics if any row's width differs from the netlist's input count,
    /// or `rows.len() > LANES`.
    pub fn clock_rows(&mut self, rows: &[Vec<bool>]) {
        let words = pack_rows(rows, self.netlist.inputs().len());
        self.clock_words(&words);
    }

    /// Runs a sequential stimulus in lane 0 alone (the other lanes idle
    /// with zero inputs and masked-out activity), mirroring a scalar
    /// [`crate::engine::Simulator::run`]: same state evolution, same
    /// [`Activity`] record, computed with word ops and popcounts.
    pub fn run_sequential<'v, I>(&mut self, stimulus: I)
    where
        I: IntoIterator<Item = &'v Vec<bool>>,
    {
        self.active = 1;
        for vector in stimulus {
            let words: Vec<u64> = vector.iter().map(|&b| u64::from(b)).collect();
            self.clock_words(&words);
        }
    }

    /// The accumulated switching activity over the active lanes.
    #[must_use]
    pub fn activity(&self) -> &Activity {
        &self.activity
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &'a Netlist {
        self.netlist
    }
}

/// Transposes per-lane input rows into lane words: `rows[i]` becomes bit
/// `i` of each returned word, one word per input position (`width` words
/// total). Rows must all have `width` entries; at most [`LANES`] rows.
///
/// # Panics
///
/// Panics if `rows.len() > LANES` or any row's width differs.
#[must_use]
pub fn pack_rows(rows: &[Vec<bool>], width: usize) -> Vec<u64> {
    assert!(rows.len() <= LANES, "{} rows exceed {LANES} lanes", rows.len());
    let mut words = vec![0u64; width];
    for (lane, row) in rows.iter().enumerate() {
        assert_eq!(row.len(), width, "row {lane} width mismatch");
        for (k, &v) in row.iter().enumerate() {
            if v {
                words[k] |= 1u64 << lane;
            }
        }
    }
    words
}

/// Inverse of [`pack_rows`]: extracts the first `count` lanes of `words`
/// back into per-lane rows.
///
/// # Panics
///
/// Panics if `count > LANES`.
#[must_use]
pub fn unpack_rows(words: &[u64], count: usize) -> Vec<Vec<bool>> {
    assert!(count <= LANES, "{count} rows exceed {LANES} lanes");
    (0..count)
        .map(|lane| words.iter().map(|w| w >> lane & 1 == 1).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use crate::stimulus;
    use fpga_fabric::device::BramShape;
    use fpga_fabric::netlist::{BramWrite, Cell};

    /// 2-bit binary counter with enable (LUT-based), as in the scalar
    /// engine's tests.
    fn counter() -> Netlist {
        let mut n = Netlist::new("cnt");
        let en = n.add_net("en");
        let q0 = n.add_net("q0");
        let q1 = n.add_net("q1");
        let d0 = n.add_net("d0");
        let d1 = n.add_net("d1");
        n.add_input("en", en);
        n.add_output("q0", q0);
        n.add_output("q1", q1);
        n.add_cell(Cell::Lut {
            inputs: vec![q0, en],
            output: d0,
            truth: 0b0110,
        });
        let mut t = 0u64;
        for m in 0..8u64 {
            let (q1v, q0v, env) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            if q1v ^ (q0v && env) {
                t |= 1 << m;
            }
        }
        n.add_cell(Cell::Lut {
            inputs: vec![q1, q0, en],
            output: d1,
            truth: t,
        });
        n.add_cell(Cell::Ff {
            d: d0,
            q: q0,
            ce: None,
            init: false,
        });
        n.add_cell(Cell::Ff {
            d: d1,
            q: q1,
            ce: None,
            init: false,
        });
        n
    }

    #[test]
    fn lanes_advance_independently() {
        // Lane 0 counts every cycle; lane 1 never; lane 2 alternates.
        let n = counter();
        let mut b = BatchSimulator::new(&n).unwrap();
        for cycle in 0..6 {
            let en = 0b001 | (u64::from(cycle % 2 == 0) << 2);
            b.clock_words(&[en]);
        }
        let count = |lane: usize| {
            let o = b.lane_outputs(lane);
            u8::from(o[0]) | u8::from(o[1]) << 1
        };
        assert_eq!(count(0), 6 % 4);
        assert_eq!(count(1), 0);
        assert_eq!(count(2), 3);
    }

    #[test]
    fn single_lane_matches_scalar_engine_bit_for_bit() {
        let n = counter();
        let stim = stimulus::random(1, 200, 11);
        let mut scalar = Simulator::new(&n).unwrap();
        for v in &stim {
            scalar.clock(v);
        }
        let mut batch = BatchSimulator::new(&n).unwrap();
        batch.run_sequential(&stim);
        assert_eq!(batch.activity().toggles, scalar.activity().toggles);
        assert_eq!(batch.activity().cycles, scalar.activity().cycles);
        assert_eq!(
            batch.activity().ff_active_cycles,
            scalar.activity().ff_active_cycles
        );
        assert_eq!(batch.lane_outputs(0), scalar.outputs());
    }

    #[test]
    fn pack_unpack_round_trip() {
        let rows = stimulus::random(5, 64, 3);
        let words = pack_rows(&rows, 5);
        assert_eq!(unpack_rows(&words, 64), rows);
    }

    #[test]
    fn load_lane_state_resumes_mid_run() {
        // Drive a scalar sim 3 cycles, transplant its state into lane 7,
        // and check the next cycle agrees.
        let n = counter();
        let stim = stimulus::random(1, 4, 5);
        let mut scalar = Simulator::new(&n).unwrap();
        for v in &stim[..3] {
            scalar.clock(v);
        }
        let mut batch = BatchSimulator::new(&n).unwrap();
        let state: Vec<bool> = batch
            .seq_nets()
            .iter()
            .map(|net| scalar.value(*net))
            .collect();
        batch.load_lane_state(7, &state);
        let expected = scalar.clock(&stim[3]);
        let mut words = vec![0u64];
        if stim[3][0] {
            words[0] |= 1 << 7;
        }
        batch.clock_words(&words);
        assert_eq!(batch.lane_outputs(7), expected);
    }

    #[test]
    fn per_lane_truth_fault_diverges_one_lane() {
        let n = counter();
        let mut b = BatchSimulator::new(&n).unwrap();
        // Corrupt lane 3's first LUT (d0 = q0 ^ en): flip entry 0b10
        // (q0=0, en=1) — the entry the first cycle from reset exercises.
        b.flip_lane_truth(0, 3, 0b10).unwrap();
        b.clock_words(&[u64::MAX]);
        // Lane 0 counted to 1; lane 3's corrupted LUT held q0 at 0.
        assert_eq!(b.lane_outputs(0), vec![true, false]);
        assert_eq!(b.lane_outputs(3), vec![false, false]);
        assert!(b.flip_lane_truth(2, 0, 0).is_err(), "FF is not a LUT");
    }

    #[test]
    fn per_lane_bram_fault_and_write_port() {
        let shape = BramShape {
            addr_bits: 9,
            data_bits: 36,
        };
        let mut n = Netlist::new("rw");
        let raddr: Vec<_> = (0..9).map(|i| n.add_net(format!("ra{i}"))).collect();
        let waddr: Vec<_> = (0..9).map(|i| n.add_net(format!("wa{i}"))).collect();
        let wdata = n.add_net("wd");
        let we = n.add_net("we");
        let d = n.add_net("d0");
        for (i, net) in raddr.iter().enumerate() {
            n.add_input(format!("ra{i}"), *net);
        }
        for (i, net) in waddr.iter().enumerate() {
            n.add_input(format!("wa{i}"), *net);
        }
        n.add_input("wd", wdata);
        n.add_input("we", we);
        n.add_output("d0", d);
        n.add_cell(Cell::Bram {
            shape,
            addr: raddr,
            dout: vec![d],
            en: None,
            init: vec![0; 512],
            output_init: 0,
            write: Some(BramWrite {
                addr: waddr,
                data: vec![wdata],
                we,
            }),
        });
        let mut b = BatchSimulator::new(&n).unwrap();
        // Lane 5's ROM gets a pre-flipped bit at word 0.
        b.flip_lane_bram_init(0, 5, 0, 0).unwrap();
        // Lane 9 writes 1 to word 0 this cycle (read-first: sees 0 now).
        let mut words = vec![0u64; 20];
        words[18] = 1 << 9; // wd
        words[19] = 1 << 9; // we
        b.clock_words(&words);
        assert!(b.lane_value(d, 5), "lane 5 reads its flipped ROM bit");
        assert!(!b.lane_value(d, 9), "read-first on collision");
        assert!(!b.lane_value(d, 0), "lane 0 unaffected");
        // Next cycle lane 9 sees its own write; other lanes still 0.
        b.clock_words(&vec![0u64; 20]);
        assert!(b.lane_value(d, 9));
        assert!(!b.lane_value(d, 0));
    }

    #[test]
    fn activity_mask_restricts_counting() {
        let n = counter();
        let mut b = BatchSimulator::new(&n).unwrap();
        b.set_active(0b1); // only lane 0
        b.clock_words(&[u64::MAX]); // all lanes counting, one observed
        assert_eq!(b.activity().cycles, 1);
        // en toggled in every lane but only lane 0's transition counts.
        assert_eq!(b.activity().toggles[0], 1);
    }
}
