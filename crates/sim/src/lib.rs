//! Cycle-based FPGA netlist simulation with switching-activity recording.
//!
//! Stands in for the paper's post-place-and-route ModelSim run (Fig. 6):
//! drive the mapped design with stimulus, record per-net toggle counts
//! (the `.vcd` content XPower consumes), and honour the block-RAM enable
//! port that the clock-control technique of Sec. 6 exercises.
//!
//! * [`engine`] — the scalar simulator and [`engine::Activity`] record;
//! * [`kernel`] — the 64-lane bit-parallel [`kernel::BatchSimulator`]
//!   (one `u64` word per net, 64 independent simulations per clock);
//! * [`schedule`] — the levelized evaluation schedule both engines share
//!   (re-exported from [`fpga_fabric::schedule`]);
//! * [`timing`] — the incremental static-timing kernel built on the same
//!   schedule (re-exported from [`fpga_fabric::sta`]);
//! * [`stimulus`] — deterministic random / biased / constant input streams;
//! * [`vcd`] — a minimal VCD writer for waveform inspection.
//!
//! # Examples
//!
//! ```
//! use fpga_fabric::netlist::{Cell, Netlist};
//! use netsim::engine::Simulator;
//!
//! // A 1-bit toggler: q' = !q.
//! let mut n = Netlist::new("toggle");
//! let q = n.add_net("q");
//! let d = n.add_net("d");
//! n.add_cell(Cell::Lut { inputs: vec![q], output: d, truth: 0b01 });
//! n.add_cell(Cell::Ff { d, q, ce: None, init: false });
//! n.add_output("q", q);
//!
//! let mut sim = Simulator::new(&n)?;
//! assert_eq!(sim.clock(&[]), vec![true]);
//! assert_eq!(sim.clock(&[]), vec![false]);
//! # Ok::<(), fpga_fabric::netlist::NetlistError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod engine;
pub mod kernel;
pub mod schedule;
pub mod stimulus;
pub mod timing;
pub mod vcd;

pub use engine::{Activity, Simulator};
pub use kernel::BatchSimulator;
pub use vcd::VcdRecorder;
