//! The levelized evaluation schedule both engines share.
//!
//! The schedule moved to [`fpga_fabric::schedule`] so the placer's
//! incremental static-timing kernel ([`fpga_fabric::sta`]) can reuse the
//! same levelized traversal without a dependency cycle (`netsim` depends
//! on `fpga_fabric`, not the other way around). This module re-exports it
//! under the historical `netsim::schedule` path; both simulation engines
//! and all external callers keep compiling unchanged.

pub use fpga_fabric::schedule::{write_data_mask, Schedule};
