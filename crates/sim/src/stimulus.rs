//! Stimulus generators.
//!
//! The paper drives each benchmark "for a large number of random inputs"
//! (Sec. 5); [`random`] reproduces that. Idle-biased stimulus for the
//! Sec. 6 clock-control experiments needs knowledge of the FSM's STG and
//! therefore lives in the `emb-fsm` crate, which feeds the resulting
//! vectors back through replay-style iteration.

use xrand::SmallRng;

/// An infinite stream of uniformly random input vectors.
///
/// Deterministic for a given seed.
#[derive(Debug, Clone)]
pub struct Random {
    rng: SmallRng,
    width: usize,
}

impl Random {
    /// Creates a generator of `width`-bit vectors.
    #[must_use]
    pub fn new(width: usize, seed: u64) -> Self {
        Random {
            rng: SmallRng::seed_from_u64(seed ^ 0x1234_5678_9abc_def0),
            width,
        }
    }

    /// Takes the next `n` vectors.
    pub fn take_vectors(&mut self, n: usize) -> Vec<Vec<bool>> {
        (0..n).map(|_| self.next_vector()).collect()
    }

    /// The next vector.
    pub fn next_vector(&mut self) -> Vec<bool> {
        (0..self.width).map(|_| self.rng.random_bool(0.5)).collect()
    }
}

impl Iterator for Random {
    type Item = Vec<bool>;

    fn next(&mut self) -> Option<Self::Item> {
        Some(self.next_vector())
    }
}

/// `n` random vectors of the given width (convenience wrapper).
#[must_use]
pub fn random(width: usize, n: usize, seed: u64) -> Vec<Vec<bool>> {
    Random::new(width, seed).take_vectors(n)
}

/// `n` copies of a constant vector.
#[must_use]
pub fn constant(vector: &[bool], n: usize) -> Vec<Vec<bool>> {
    vec![vector.to_vec(); n]
}

/// Vectors with each bit independently 1 with probability `p` — used to
/// skew input statistics (e.g. rare request lines on mostly idle control
/// units).
#[must_use]
pub fn biased(width: usize, n: usize, p: f64, seed: u64) -> Vec<Vec<bool>> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0bad_cafe_0000_0001);
    (0..n)
        .map(|_| (0..width).map(|_| rng.random_bool(p)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_is_deterministic() {
        assert_eq!(random(4, 10, 7), random(4, 10, 7));
        assert_ne!(random(4, 10, 7), random(4, 10, 8));
    }

    #[test]
    fn widths_are_respected() {
        for v in random(5, 20, 1) {
            assert_eq!(v.len(), 5);
        }
        for v in biased(3, 10, 0.1, 2) {
            assert_eq!(v.len(), 3);
        }
    }

    #[test]
    fn bias_shifts_density() {
        let lo = biased(8, 500, 0.05, 3);
        let hi = biased(8, 500, 0.95, 3);
        let ones = |vs: &[Vec<bool>]| -> usize { vs.iter().flatten().filter(|&&b| b).count() };
        assert!(ones(&lo) < ones(&hi) / 4);
    }

    #[test]
    fn constant_repeats() {
        let vs = constant(&[true, false], 3);
        assert_eq!(vs.len(), 3);
        assert!(vs.iter().all(|v| v == &vec![true, false]));
    }

    #[test]
    fn iterator_interface() {
        let vs: Vec<Vec<bool>> = Random::new(2, 9).take(4).collect();
        assert_eq!(vs.len(), 4);
    }
}
