//! The incremental static-timing kernel, under its simulation-stack name.
//!
//! The kernel shares [`fpga_fabric::schedule`]'s levelized traversal with
//! both simulation engines; it lives in `fpga_fabric` (next to the placer
//! that queries it inside the anneal) and is re-exported here so the
//! schedule and the timing engine built on it are siblings under `netsim`
//! as well.

pub use fpga_fabric::sta::{estimate_critical_ns, TimingKernel};

#[cfg(test)]
mod tests {
    use super::*;
    use fpga_fabric::netlist::{Cell, Netlist};
    use fpga_fabric::timing::DelayModel;

    #[test]
    fn reexported_kernel_builds_and_times() {
        let mut n = Netlist::new("t");
        let d = n.add_net("d");
        let q = n.add_net("q");
        n.add_cell(Cell::Lut {
            inputs: vec![q],
            output: d,
            truth: 0b01,
        });
        n.add_cell(Cell::Ff {
            d,
            q,
            ce: None,
            init: false,
        });
        n.add_output("q", q);
        let mut k = TimingKernel::new(&n, &DelayModel::default()).unwrap();
        k.flush();
        assert!(k.critical_ns() > 0.0);
        assert!(k.fmax_mhz().is_finite());
    }
}
