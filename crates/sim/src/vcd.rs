//! Minimal VCD (Value Change Dump) writer.
//!
//! The paper's flow saves switching activity "in the .vcd file" for the
//! XPower tool (Sec. 5). This writer produces a standard four-state VCD
//! restricted to 0/1 so traces can be inspected with GTKWave or diffed in
//! tests. One timestep per clock cycle.

use fpga_fabric::netlist::{NetId, Netlist};
use std::fmt::Write as _;

/// Records selected nets cycle-by-cycle and renders VCD text.
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    nets: Vec<(NetId, String)>,
    /// Per-cycle values, one row per clock, aligned with `nets`.
    rows: Vec<Vec<bool>>,
}

impl VcdRecorder {
    /// Records the given nets (with display names).
    #[must_use]
    pub fn new(nets: Vec<(NetId, String)>) -> Self {
        VcdRecorder {
            nets,
            rows: Vec::new(),
        }
    }

    /// Records every net of the netlist under its netlist name.
    #[must_use]
    pub fn all_nets(netlist: &Netlist) -> Self {
        let nets = (0..netlist.num_nets())
            .map(|i| {
                let id = NetId(i as u32);
                (id, netlist.net_name(id).to_string())
            })
            .collect();
        Self::new(nets)
    }

    /// Captures the current value of every recorded net.
    pub fn sample(&mut self, value_of: impl Fn(NetId) -> bool) {
        let row = self.nets.iter().map(|(id, _)| value_of(*id)).collect();
        self.rows.push(row);
    }

    /// Number of sampled cycles.
    #[must_use]
    pub fn num_cycles(&self) -> usize {
        self.rows.len()
    }

    /// Renders the VCD text.
    ///
    /// `timescale_ns` is the clock period used for `$timescale`.
    #[must_use]
    pub fn render(&self, module: &str, timescale_ns: u64) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "$date synthetic $end");
        let _ = writeln!(s, "$version romfsm netsim $end");
        let _ = writeln!(s, "$timescale {timescale_ns} ns $end");
        let _ = writeln!(s, "$scope module {module} $end");
        let codes: Vec<String> = (0..self.nets.len()).map(id_code).collect();
        for ((_, name), code) in self.nets.iter().zip(&codes) {
            let clean: String = name
                .chars()
                .map(|c| if c.is_whitespace() { '_' } else { c })
                .collect();
            let _ = writeln!(s, "$var wire 1 {code} {clean} $end");
        }
        let _ = writeln!(s, "$upscope $end");
        let _ = writeln!(s, "$enddefinitions $end");

        let mut last: Vec<Option<bool>> = vec![None; self.nets.len()];
        for (t, row) in self.rows.iter().enumerate() {
            let mut changes = String::new();
            for (k, &v) in row.iter().enumerate() {
                if last[k] != Some(v) {
                    let _ = writeln!(changes, "{}{}", u8::from(v), codes[k]);
                    last[k] = Some(v);
                }
            }
            if !changes.is_empty() || t == 0 {
                let _ = writeln!(s, "#{t}");
                s.push_str(&changes);
            }
        }
        let _ = writeln!(s, "#{}", self.rows.len());
        s
    }

    /// Total value changes across all nets (equals the toggle count the
    /// activity recorder sees, plus initial-value assignments).
    #[must_use]
    pub fn num_changes(&self) -> usize {
        let mut last: Vec<Option<bool>> = vec![None; self.nets.len()];
        let mut count = 0;
        for row in &self.rows {
            for (k, &v) in row.iter().enumerate() {
                if last[k] != Some(v) {
                    count += 1;
                    last[k] = Some(v);
                }
            }
        }
        count
    }
}

/// VCD identifier code for index `i` (printable ASCII 33..=126).
fn id_code(mut i: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use fpga_fabric::netlist::Cell;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| ('!'..='~').contains(&ch)));
            assert!(seen.insert(c));
        }
    }

    #[test]
    fn vcd_structure() {
        let mut n = Netlist::new("t");
        let a = n.add_net("a");
        let q = n.add_net("q");
        n.add_input("a", a);
        n.add_output("q", q);
        n.add_cell(Cell::Ff {
            d: a,
            q,
            ce: None,
            init: false,
        });
        let mut sim = Simulator::new(&n).unwrap();
        let mut rec = VcdRecorder::all_nets(&n);
        rec.sample(|net| sim.value(net));
        for bit in [true, false, true] {
            sim.clock(&[bit]);
            rec.sample(|net| sim.value(net));
        }
        let text = rec.render("t", 10);
        assert!(text.contains("$timescale 10 ns $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$enddefinitions $end"));
        // Initial values at #0 and a final timestamp exist.
        assert!(text.contains("#0"));
        assert!(text.contains("#4"));
        assert_eq!(rec.num_cycles(), 4);
        assert!(rec.num_changes() >= 4);
    }

    #[test]
    fn unchanged_nets_emit_once() {
        let rec = {
            let mut r = VcdRecorder::new(vec![(NetId(0), "x".into())]);
            for _ in 0..5 {
                r.sample(|_| true);
            }
            r
        };
        assert_eq!(rec.num_changes(), 1);
        let text = rec.render("m", 1);
        assert_eq!(text.matches("1!").count(), 1);
    }
}
