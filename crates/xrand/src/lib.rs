//! Hermetic in-workspace pseudo-random number generation.
//!
//! The build environment has no registry access, so this crate replaces
//! the external `rand` dependency with a self-contained generator:
//! SplitMix64 expands a `u64` seed into the state of a xoshiro256\*\*
//! core (Blackman & Vigna's recommended general-purpose generator). The
//! API mirrors the subset of `rand::rngs::SmallRng` the workspace used —
//! [`SmallRng::seed_from_u64`], [`SmallRng::random_range`],
//! [`SmallRng::random_bool`], [`SmallRng::random`] — so call sites port
//! one-for-one.
//!
//! **Seed compatibility:** streams are *not* bit-compatible with the
//! `rand` crate's `SmallRng`. Any artifact keyed to a seed (generated
//! machines, stimulus vectors, placements) changed when the workspace
//! switched over; seeds remain stable within this crate from now on.
//!
//! The [`proptest_lite`] module is a minimal seeded property-test
//! harness (case generation, failure-seed reporting, `CASES`/`SEED` env
//! overrides) replacing the external `proptest` dev-dependency.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod proptest_lite;

/// One step of the SplitMix64 stream: advances `state` and returns the
/// next output. Used for seed expansion so that similar seeds still
/// produce uncorrelated xoshiro states.
#[inline]
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small, fast, seedable generator: xoshiro256\*\* seeded via
/// SplitMix64. Deterministic for a given seed on every platform.
///
/// Not cryptographically secure — this is a simulation/testing RNG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose stream is a pure function of `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut st = seed;
        let s = [
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
            splitmix64(&mut st),
        ];
        SmallRng { s }
    }

    /// The next 64 uniformly random bits (xoshiro256\*\* step).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly random bits (upper half of a 64-bit step,
    /// which has the better-mixed bits).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly random value of `T` over its full range (integers),
    /// `[0, 1)` for floats, or a fair coin for `bool`.
    #[inline]
    pub fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // 53-bit resolution, like a uniform f64 draw compared against p.
        self.random::<f64>() < p
    }

    /// A uniformly random value in `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Uniform integer in `[0, n)` by Lemire's widening-multiply method
    /// (exact: no modulo bias).
    #[inline]
    fn bounded_u64(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            // Threshold = 2^64 mod n; reject the biased low zone.
            let t = n.wrapping_neg() % n;
            while lo < t {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }
}

/// Types [`SmallRng::random`] can produce.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng(rng: &mut SmallRng) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53-bit resolution.
    #[inline]
    fn from_rng(rng: &mut SmallRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`SmallRng::random_range`] can sample from.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut SmallRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + rng.bounded_u64(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn known_answer_splitmix64() {
        // Reference values for seed 0 from the SplitMix64 definition.
        let mut st = 0u64;
        assert_eq!(splitmix64(&mut st), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(&mut st), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(splitmix64(&mut st), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(0u64..1);
            assert_eq!(w, 0);
            let x = rng.random_range(5u32..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 8 values hit in 1000 draws");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SmallRng::seed_from_u64(0).random_range(5usize..5);
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }

    #[test]
    fn bool_probability_is_roughly_honoured() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2600..3400).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniformity_chi_square_sanity() {
        // 16 buckets over 16k draws: each bucket expects 1024; allow ±25%.
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buckets = [0usize; 16];
        for _ in 0..16_384 {
            buckets[rng.random_range(0usize..16)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            assert!((768..1280).contains(&b), "bucket {i} count {b}");
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = SmallRng::seed_from_u64(21);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
