//! Minimal seeded property-test harness.
//!
//! Replaces the external `proptest` dev-dependency with the three things
//! the workspace actually used: many seeded random cases per property,
//! a reproducible failure report, and knobs to re-run a single case.
//!
//! Each case gets its own [`SmallRng`] derived from a fixed base seed,
//! so runs are deterministic in CI. When a case fails (panics), the
//! harness prints the case seed and re-raises; re-run exactly that case
//! with the `SEED` environment variable.
//!
//! Environment overrides:
//!
//! * `CASES=<n>` — run `n` cases instead of the property's default;
//! * `SEED=<u64>` — run only the case with this seed (takes precedence
//!   over `CASES`).
//!
//! ```
//! use xrand::proptest_lite::run_cases;
//!
//! run_cases(32, |rng| {
//!     let x = rng.random_range(0u64..1000);
//!     assert!(x.checked_mul(2).is_some());
//! });
//! ```

use crate::{splitmix64, SmallRng};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Base of the per-case seed stream. Arbitrary but fixed: hermetic CI
/// must see the same cases on every run.
const BASE_SEED: u64 = 0x0f5a_11ab_1e5e_ed00;

/// Runs `property` against `default_cases` independently seeded RNGs
/// (subject to the `CASES`/`SEED` environment overrides).
///
/// The property signals failure by panicking (plain `assert!` works).
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case seed.
pub fn run_cases<F>(default_cases: usize, property: F)
where
    F: Fn(&mut SmallRng),
{
    if let Some(seed) = env_u64("SEED") {
        eprintln!("proptest_lite: SEED override — running single case {seed}");
        let mut rng = SmallRng::seed_from_u64(seed);
        property(&mut rng);
        return;
    }
    let cases = env_u64("CASES").map_or(default_cases, |n| n as usize);
    let mut stream = BASE_SEED;
    for case in 0..cases {
        let case_seed = splitmix64(&mut stream);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = SmallRng::seed_from_u64(case_seed);
            property(&mut rng);
        }));
        if let Err(payload) = outcome {
            eprintln!(
                "proptest_lite: case {case}/{cases} FAILED with seed {case_seed}; \
                 re-run just this case with `SEED={case_seed} cargo test ...`"
            );
            resume_unwind(payload);
        }
    }
}

/// Runs a *sized* property: each case receives an RNG plus a size bound
/// (e.g. "number of states" or "pattern width") drawn as `max_size`.
///
/// On failure the harness shrinks by bounded re-generation: the failing
/// seed is replayed at sizes `1, 2, 4, …` up to the failing size, and the
/// smallest size that still fails is reported (and its panic re-raised).
/// Because generation is a pure function of `(seed, size)`, replaying at
/// a smaller size is a smaller — still deterministic — counterexample.
///
/// Environment overrides: `CASES` and `SEED` as in [`run_cases`], plus
/// `SIZE=<n>` to pin the size (useful together with `SEED` to re-run a
/// shrunk reproduction exactly).
///
/// # Panics
///
/// Re-raises the panic of the smallest failing replay after printing the
/// minimal `(seed, size)` reproduction.
pub fn run_sized_cases<F>(default_cases: usize, max_size: u32, property: F)
where
    F: Fn(&mut SmallRng, u32),
{
    let pinned_size = env_u64("SIZE").map(|n| (n as u32).clamp(1, max_size.max(1)));
    if let Some(seed) = env_u64("SEED") {
        let size = pinned_size.unwrap_or(max_size);
        eprintln!("proptest_lite: SEED override — running single case {seed} at size {size}");
        let mut rng = SmallRng::seed_from_u64(seed);
        property(&mut rng, size);
        return;
    }
    let cases = env_u64("CASES").map_or(default_cases, |n| n as usize);
    let mut stream = BASE_SEED;
    for case in 0..cases {
        let case_seed = splitmix64(&mut stream);
        let size = pinned_size.unwrap_or(max_size);
        let attempt = |size: u32| {
            catch_unwind(AssertUnwindSafe(|| {
                let mut rng = SmallRng::seed_from_u64(case_seed);
                property(&mut rng, size);
            }))
        };
        if let Err(payload) = attempt(size) {
            let (min_size, min_payload) = shrink_size(size, payload, &attempt);
            eprintln!(
                "proptest_lite: case {case}/{cases} FAILED with seed {case_seed}; \
                 smallest failing size {min_size} (started at {size}); re-run with \
                 `SEED={case_seed} SIZE={min_size} cargo test ...`"
            );
            resume_unwind(min_payload);
        }
    }
}

/// Replays the failing case at sizes `1, 2, 4, …` (strictly below
/// `failed_size`) and returns the smallest size that still fails along
/// with its panic payload. The probe count is bounded at
/// `log2(failed_size)` replays, so shrinking cannot loop.
fn shrink_size<A>(
    failed_size: u32,
    payload: Box<dyn std::any::Any + Send>,
    attempt: &A,
) -> (u32, Box<dyn std::any::Any + Send>)
where
    A: Fn(u32) -> std::thread::Result<()>,
{
    let mut probe = 1u32;
    while probe < failed_size {
        if let Err(smaller) = attempt(probe) {
            return (probe, smaller);
        }
        probe = probe.saturating_mul(2);
    }
    (failed_size, payload)
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("proptest_lite: ignoring unparsable {name}={raw:?}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_requested_number_of_cases() {
        let count = AtomicUsize::new(0);
        run_cases(17, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 17);
    }

    #[test]
    fn cases_see_distinct_seeds() {
        let mut first_draws: Vec<u64> = Vec::new();
        let draws = std::sync::Mutex::new(&mut first_draws);
        run_cases(8, |rng| {
            draws.lock().unwrap().push(rng.next_u64());
        });
        let mut sorted = first_draws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "every case gets a distinct stream");
    }

    #[test]
    fn failing_case_reports_and_repanics() {
        let result = catch_unwind(|| {
            run_cases(4, |rng| {
                let v = rng.random_range(0u64..100);
                // Force a failure on some case deterministically.
                assert!(v == u64::MAX, "intentional failure (v={v})");
            });
        });
        assert!(result.is_err(), "failure must propagate out of run_cases");
    }

    #[test]
    fn sized_cases_shrink_to_smallest_failing_size() {
        // Property fails whenever size >= 3: shrinking from 64 should
        // land on the probe size 4 (1 and 2 pass, 4 is the first probe
        // that fails).
        let sizes_tried = std::sync::Mutex::new(Vec::new());
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_sized_cases(1, 64, |_rng, size| {
                sizes_tried.lock().unwrap().push(size);
                assert!(size < 3, "fails at any size >= 3");
            });
        }));
        assert!(result.is_err(), "failing property must propagate");
        let tried = sizes_tried.lock().unwrap().clone();
        assert_eq!(
            tried,
            vec![64, 1, 2, 4],
            "shrink replays the seed at doubling sizes until one fails"
        );
    }

    #[test]
    fn sized_cases_pass_through_when_property_holds() {
        let count = AtomicUsize::new(0);
        run_sized_cases(9, 32, |_rng, size| {
            assert_eq!(size, 32);
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn case_stream_is_deterministic_across_runs() {
        let collect = || {
            let mut seen: Vec<u64> = Vec::new();
            {
                let sink = std::sync::Mutex::new(&mut seen);
                run_cases(5, |rng| sink.lock().unwrap().push(rng.next_u64()));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }
}
