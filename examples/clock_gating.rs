//! Clock control on a mostly-idle control unit (Sec. 6 end to end).
//!
//! A rotary sequencer sits halted most of the time; the enable logic
//! derived from its STG stops the BRAM clock during those cycles. The
//! example shows the enable logic itself, proves cycle-exactness, and
//! quantifies the power difference at several idle levels.
//!
//! Run with: `cargo run --release --example clock_gating`

use romfsm::emb::clock_control::attach_emb_clock_control;
use romfsm::emb::flow::{emb_clock_controlled_flow, emb_flow, FlowConfig, Stimulus};
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fsm::benchmarks::rotary_sequencer;
use romfsm::logic::techmap::MapOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stg = rotary_sequencer();
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default())?;
    let (netlist, control) = attach_emb_clock_control(&emb, MapOptions::default())?;
    println!(
        "enable logic: {} LUTs / {} slices, derived from {} idle cubes (cone: {})",
        control.num_luts(),
        control.num_slices(),
        control.idle_cubes,
        if control.uses_outputs {
            "state+inputs+outputs"
        } else {
            "state+inputs"
        },
    );

    verify_against_stg(&netlist, &stg, OutputTiming::Registered, 2000, 11)?;
    println!("clock-controlled netlist is cycle-exact with the STG oracle\n");

    let cfg = FlowConfig::default();
    println!("idle   EMB (mW)  EMB+cc (mW)  saving");
    for idle in [0.0, 0.5, 0.9] {
        let stim = Stimulus::IdleBiased(idle);
        let plain = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg)?;
        let gated = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)?;
        let p0 = plain.power_at(100.0).expect("100MHz").total_mw();
        let p1 = gated.power_at(100.0).expect("100MHz").total_mw();
        println!(
            "{:>4.0}%  {:8.2}  {:11.2}  {:5.1}%",
            gated.idle_fraction * 100.0,
            p0,
            p1,
            100.0 * (p0 - p1) / p0
        );
    }
    println!("\n\"significant power savings can be seen for an FSM which spends");
    println!("much of the time in idle states\" (Sec. 6).");
    Ok(())
}
