//! ECO: change an FSM's function by rewriting memory contents only.
//!
//! Sec. 4.2: "The changes can be made quickly by re-writing the memory
//! location which needs to be changed. This process … is much faster than
//! going through the complete synthesis and placement and routing
//! process. This is helpful for last moment engineering change orders."
//!
//! This example maps a 0101 detector, places and routes it, then retunes
//! it to detect 0110 by patching only the BRAM init image — the placed
//! netlist structure never changes — and proves both functions by
//! lockstep simulation.
//!
//! Run with: `cargo run --example eco_rewrite`

use romfsm::emb::eco;
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fsm::benchmarks::sequence_detector_0101;
use romfsm::fsm::stg::StgBuilder;

fn detector_0110() -> romfsm::fsm::Stg {
    let mut b = StgBuilder::new("seq0110", 1, 1);
    let a = b.state("A");
    let s_b = b.state("B");
    let c = b.state("C");
    let d = b.state("D");
    b.transition(a, "0", s_b, "0");
    b.transition(a, "1", a, "0");
    b.transition(s_b, "1", c, "0");
    b.transition(s_b, "0", s_b, "0");
    b.transition(c, "1", d, "0");
    b.transition(c, "0", s_b, "0");
    b.transition(d, "0", s_b, "1"); // 0110 detected
    b.transition(d, "1", a, "0");
    b.build().expect("detector is valid")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let old = sequence_detector_0101();
    let new = detector_0110();

    let emb = map_fsm_into_embs(&old, &EmbOptions::default())?;
    let mut netlist = emb.to_netlist();
    verify_against_stg(&netlist, &old, OutputTiming::Registered, 500, 7)?;
    println!("placed design implements {:?}", old.name());

    // The ECO: recompute the ROM under the frozen mapping and patch it in.
    let rewrite = eco::rewrite(&emb, &new)?;
    println!(
        "rewriting {} of {} memory words; structure untouched",
        rewrite.words_changed,
        rewrite.emb.rom.len()
    );
    rewrite.apply_to_netlist(&mut netlist)?;

    verify_against_stg(&netlist, &new, OutputTiming::Registered, 500, 8)?;
    println!(
        "same netlist now implements {:?} — no re-synthesis, no re-P&R",
        new.name()
    );

    // And it no longer implements the old function:
    assert!(verify_against_stg(&netlist, &old, OutputTiming::Registered, 500, 9).is_err());
    println!("(and provably no longer implements {:?})", old.name());
    Ok(())
}
