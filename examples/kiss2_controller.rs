//! A user-authored controller through the whole flow: KISS2 in, state
//! minimization, both implementations out.
//!
//! The machine is a small bus arbiter with two request lines written the
//! way SIS would consume it. It deliberately contains a redundant state
//! (GRANT1B duplicates GRANT1A) to show state minimization at work before
//! mapping.
//!
//! Run with: `cargo run --release --example kiss2_controller`

use romfsm::emb::flow::{emb_flow, ff_flow, FlowConfig, Stimulus};
use romfsm::emb::map::EmbOptions;
use romfsm::fsm::{kiss2, minimize};
use romfsm::logic::synth::SynthOptions;

const ARBITER: &str = "\
# two-channel bus arbiter: req0 has priority; - releases on req drop
.i 2
.o 2
.s 4
.p 12
.r IDLE
00 IDLE IDLE 00
1- IDLE GRANT0 10
01 IDLE GRANT1A 01
-0 GRANT0 IDLE 00
-1 GRANT0 GRANT1A 01
1- GRANT0 GRANT0 10
0- GRANT1A IDLE 00
11 GRANT1A GRANT1B 01
10 GRANT1A GRANT1B 01
0- GRANT1B IDLE 00
11 GRANT1B GRANT1A 01
10 GRANT1B GRANT1A 01
.e
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Parse the KISS2 source (the paper's Fig. 6 entry point).
    let stg = kiss2::parse(ARBITER, "arbiter")?;
    println!(
        "parsed {:?}: {} states, {} transitions",
        stg.name(),
        stg.num_states(),
        stg.transitions().len()
    );

    // 2. State minimization folds the duplicated grant state.
    let minimized = minimize::minimize(&stg)?;
    println!(
        "minimized: {} -> {} states (GRANT1B was redundant)",
        stg.num_states(),
        minimized.stg.num_states()
    );
    let stg = minimized.stg;

    // 3. Implement both ways and compare.
    let cfg = FlowConfig {
        cycles: 1500,
        ..FlowConfig::default()
    };
    let ff = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg)?;
    let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg)?;
    println!();
    println!(
        "FF/LUT: {}, fmax {:.1} MHz, {:.2} mW @100MHz",
        ff.area,
        ff.timing.fmax_mhz,
        ff.power_at(100.0).expect("100MHz").total_mw()
    );
    println!(
        "EMB:    {}, fmax {:.1} MHz, {:.2} mW @100MHz",
        emb.area,
        emb.timing.fmax_mhz,
        emb.power_at(100.0).expect("100MHz").total_mw()
    );

    // 4. Round-trip the minimized machine back out as KISS2.
    let text = kiss2::write(&stg);
    println!(
        "\nminimized machine as KISS2 ({} lines):",
        text.lines().count()
    );
    print!("{text}");
    Ok(())
}
