//! Power comparison: the paper's headline experiment on one benchmark.
//!
//! Implements the `keyb` controller three ways — conventional FF + LUT,
//! EMB (BRAM), and EMB with idle-state clock control — runs each through
//! place & route and activity simulation, and prints the power breakdown
//! at the paper's three frequencies.
//!
//! Run with: `cargo run --release --example power_comparison`

use romfsm::emb::flow::{
    emb_clock_controlled_flow, emb_flow, ff_flow, FlowConfig, FlowReport, Stimulus,
};
use romfsm::emb::map::EmbOptions;
use romfsm::logic::synth::SynthOptions;

fn show(r: &FlowReport) {
    println!(
        "{:10} area: {}, fmax {:.1} MHz, idle {:.0}%",
        r.kind.to_string(),
        r.area,
        r.timing.fmax_mhz,
        r.idle_fraction * 100.0
    );
    for p in &r.power {
        println!(
            "  {:>5.0} MHz: {:7.2} mW total ({:6.2} interconnect, {:5.2} logic, {:5.2} clock, {:5.2} bram)",
            p.freq_mhz,
            p.total_mw(),
            p.interconnect_mw,
            p.logic_mw,
            p.clock_mw,
            p.bram_mw
        );
    }
    if let Some(cc) = &r.clock_control {
        println!(
            "  clock-control overhead: {} LUTs / {} slices ({} idle cubes)",
            cc.luts, cc.slices, cc.idle_cubes
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stg = romfsm::fsm::benchmarks::by_name("keyb").expect("keyb is in the suite");
    let cfg = FlowConfig::default();
    // The paper's Table 3 scenario: roughly half the cycles idle.
    let stim = Stimulus::IdleBiased(0.5);

    println!(
        "benchmark keyb: {} states, {} inputs, {} outputs\n",
        stg.num_states(),
        stg.num_inputs(),
        stg.num_outputs()
    );
    let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg)?;
    show(&ff);
    println!();
    let emb = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg)?;
    show(&emb);
    println!();
    let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)?;
    show(&cc);

    let p = |r: &FlowReport| r.power_at(100.0).expect("100 MHz configured").total_mw();
    println!();
    println!(
        "EMB saves {:.1}% vs FF at 100 MHz; with clock control {:.1}%",
        100.0 * (p(&ff) - p(&emb)) / p(&ff),
        100.0 * (p(&ff) - p(&cc)) / p(&ff),
    );
    Ok(())
}
