//! Quickstart: map the paper's 0101 sequence detector (Fig. 2) into a
//! block RAM, verify it against the behavioural oracle, and inspect the
//! memory contents.
//!
//! Run with: `cargo run --example quickstart`

use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fsm::benchmarks::sequence_detector_0101;
use romfsm::fsm::simulate::StgSimulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The FSM: the paper's 0101 sequence detector.
    let stg = sequence_detector_0101();
    println!(
        "machine {:?}: {} states, {} input, {} output",
        stg.name(),
        stg.num_states(),
        stg.num_inputs(),
        stg.num_outputs()
    );

    // 2. Behavioural check with the reference simulator.
    let mut sim = StgSimulator::new(&stg);
    let bits = [0u8, 1, 0, 1, 0, 1];
    let outs: Vec<u8> = bits
        .iter()
        .map(|&b| u8::from(sim.clock(&[b == 1])[0]))
        .collect();
    println!("inputs  {bits:?}");
    println!("outputs {outs:?}  (detects at the 4th and 6th bit)");

    // 3. Map it into an embedded memory block (Fig. 5's algorithm).
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default())?;
    println!(
        "mapped: {} BRAM ({}), {} state bits, {} aux LUTs",
        emb.num_brams(),
        emb.shape,
        emb.num_state_bits(),
        emb.aux_luts()
    );

    // 4. The memory word for "state A, input 0" encodes next state B:
    let word = emb.rom[0b000];
    println!("rom[000] = {word:03b}  (next-state code 01 = B, output 0)");

    // 5. Emit the physical netlist and prove cycle-exactness over 1000
    //    random vectors.
    let netlist = emb.to_netlist();
    verify_against_stg(&netlist, &stg, OutputTiming::Registered, 1000, 42)?;
    println!(
        "netlist verified against the STG oracle: {} cells, {} nets",
        netlist.cells().len(),
        netlist.num_nets()
    );
    Ok(())
}
