//! Live reconfiguration: rewrite a running FSM through the BRAM's second
//! port.
//!
//! The paper changes an EMB FSM's function "by re-writing the memory
//! location which needs to be changed" (Sec. 4.2). Virtex-II block RAMs
//! are dual-ported, so this works while the machine is clocking: this
//! example runs a 0101 detector, streams in the four changed words of a
//! 0110 detector over four clock cycles (the FSM parked but never
//! stopped), and continues — same netlist, same placement, new protocol.
//!
//! Run with: `cargo run --example runtime_reconfig`

use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::reconfig;
use romfsm::fsm::benchmarks::sequence_detector_0101;
use romfsm::fsm::stg::StgBuilder;
use romfsm::sim::engine::Simulator;

fn detector_0110() -> romfsm::fsm::Stg {
    let mut b = StgBuilder::new("seq0110", 1, 1);
    let a = b.state("A");
    let s_b = b.state("B");
    let c = b.state("C");
    let d = b.state("D");
    b.transition(a, "0", s_b, "0");
    b.transition(a, "1", a, "0");
    b.transition(s_b, "1", c, "0");
    b.transition(s_b, "0", s_b, "0");
    b.transition(c, "1", d, "0");
    b.transition(c, "0", s_b, "0");
    b.transition(d, "0", s_b, "1");
    b.transition(d, "1", a, "0");
    b.build().expect("valid machine")
}

fn drive(rc: &reconfig::ReconfigurableFsm, sim: &mut Simulator<'_>, bits: &[u8]) -> String {
    bits.iter()
        .map(|&b| {
            let out = rc.clock_without_write(sim, &[b == 1]);
            if out[0] {
                '1'
            } else {
                '0'
            }
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let old = sequence_detector_0101();
    let new = detector_0110();
    let emb = map_fsm_into_embs(&old, &EmbOptions::default())?;
    let rc = reconfig::with_write_port(&emb)?;
    println!(
        "netlist with write port: {} ({} addr bits, {} data bits)",
        rc.netlist.name, rc.addr_bits, rc.data_bits
    );

    let mut sim = Simulator::new(&rc.netlist)?;
    let probe = [0u8, 1, 0, 1, 0, 1, 1, 0, 1, 1, 0];
    println!(
        "inputs          {}",
        probe.iter().map(|b| b.to_string()).collect::<String>()
    );
    println!("as 0101 machine {}", drive(&rc, &mut sim, &probe));

    // Park in state A (input 1 self-loops there), then stream the update.
    rc.clock_without_write(&mut sim, &[true]);
    let updates = reconfig::update_sequence(&emb, &new)?;
    println!(
        "streaming {} word updates through the write port (machine still clocked):",
        updates.len()
    );
    for (addr, word) in &updates {
        println!("  mem[{addr:03b}] <= {word:03b}");
    }
    rc.apply_updates(&mut sim, &updates, &[true]);

    println!("as 0110 machine {}", drive(&rc, &mut sim, &probe));
    println!("(the 0110 run detects at positions 7 and 10 of this probe)");
    Ok(())
}
