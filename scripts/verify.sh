#!/usr/bin/env sh
# Tier-1 verification, hermetically.
#
# Runs the repo's acceptance gate (release build + full test suite) with
# Cargo forced offline. Every dependency is an in-workspace crate, so a
# registry fetch is always a regression: --offline plus CARGO_NET_OFFLINE
# makes any such attempt a hard, immediate error instead of a hang or a
# silent download.
#
# Beyond build+test, two robustness gates run (ISSUE 2):
#
#  * panic-site budget — the number of unwrap()/expect(/panic!( sites in
#    non-test library code must not grow past the recorded baseline;
#  * bench regression — a fresh run of the place_sa/keyb micro-benchmark
#    must be no more than 25% slower than the committed baseline in
#    results/bench_substrates.json. Skip with VERIFY_SKIP_BENCH=1 on
#    machines too noisy to time (the gate itself, not the build, is
#    skipped).
#
# Usage: scripts/verify.sh [extra cargo test args...]
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fail() {
    echo "verify.sh: $1" >&2
    exit 1
}

command -v cargo >/dev/null 2>&1 || fail "cargo not found on PATH"

echo "== cargo build --release --offline" >&2
cargo build --release --offline --workspace \
    || fail "release build failed (a registry-access error here means a Cargo.toml reintroduced an external dependency)"

echo "== cargo test -q --offline" >&2
cargo test -q --offline --workspace "$@" \
    || fail "test suite failed"

# -- Panic-site budget ------------------------------------------------------
# Counts unwrap()/expect(/panic!( in library sources (bins excluded, and
# everything below a file's `#[cfg(test)]` marker skipped — test modules
# sit at the bottom of each file in this workspace). The budget is the
# count recorded after the ISSUE 2 panic-sweep; lower it when you remove
# sites, never raise it without a review.
PANIC_BUDGET=73
echo "== panic-site budget (<= $PANIC_BUDGET)" >&2
panic_sites=$(find crates/*/src -name '*.rs' -not -path '*/src/bin/*' \
    | xargs awk 'FNR==1{skip=0} /#\[cfg\(test\)\]/{skip=1} !skip && /unwrap\(\)|expect\(|panic!\(/{n++} END{print n+0}')
echo "   $panic_sites panic sites in library code" >&2
[ "$panic_sites" -le "$PANIC_BUDGET" ] \
    || fail "panic-site count $panic_sites exceeds budget $PANIC_BUDGET (new unwrap/expect/panic! in library code — return a typed error instead, or lower the budget only with review)"

# -- Bench regression gate --------------------------------------------------
if [ "${VERIFY_SKIP_BENCH:-0}" = "1" ]; then
    echo "== bench regression gate skipped (VERIFY_SKIP_BENCH=1)" >&2
else
    echo "== bench regression gate (place_sa/keyb, fresh vs committed)" >&2
    baseline=$(sed -n 's#.*"name": "place_sa/keyb", "median_ns": \([0-9.]*\).*#\1#p' \
        results/bench_substrates.json)
    [ -n "$baseline" ] || fail "no place_sa/keyb baseline in results/bench_substrates.json"
    fresh_dir=target/bench_fresh
    rm -rf "$fresh_dir"
    BENCH_FILTER=place_sa BENCH_RESULTS_DIR="$fresh_dir" \
        cargo bench -q --offline -p paper-bench --bench substrates \
        || fail "bench run failed"
    fresh=$(sed -n 's#.*"name": "place_sa/keyb", "median_ns": \([0-9.]*\).*#\1#p' \
        "$fresh_dir/bench_substrates.json")
    [ -n "$fresh" ] || fail "fresh bench run produced no place_sa/keyb result"
    echo "   baseline ${baseline} ns, fresh ${fresh} ns" >&2
    awk -v fresh="$fresh" -v base="$baseline" 'BEGIN{exit !(fresh <= base * 1.25)}' \
        || fail "place_sa/keyb regressed: fresh ${fresh} ns > 1.25 x baseline ${baseline} ns"
fi

echo "verify.sh: OK" >&2
