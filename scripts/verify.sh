#!/usr/bin/env sh
# Tier-1 verification, hermetically.
#
# Runs the repo's acceptance gate (release build + full test suite) with
# Cargo forced offline. Every dependency is an in-workspace crate, so a
# registry fetch is always a regression: --offline plus CARGO_NET_OFFLINE
# makes any such attempt a hard, immediate error instead of a hang or a
# silent download.
#
# Usage: scripts/verify.sh [extra cargo test args...]
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fail() {
    echo "verify.sh: $1" >&2
    exit 1
}

command -v cargo >/dev/null 2>&1 || fail "cargo not found on PATH"

echo "== cargo build --release --offline" >&2
cargo build --release --offline --workspace \
    || fail "release build failed (a registry-access error here means a Cargo.toml reintroduced an external dependency)"

echo "== cargo test -q --offline" >&2
cargo test -q --offline --workspace "$@" \
    || fail "test suite failed"

echo "verify.sh: OK" >&2
