#!/usr/bin/env sh
# Tier-1 verification, hermetically.
#
# Runs the repo's acceptance gate (release build + full test suite) with
# Cargo forced offline. Every dependency is an in-workspace crate, so a
# registry fetch is always a regression: --offline plus CARGO_NET_OFFLINE
# makes any such attempt a hard, immediate error instead of a hang or a
# silent download.
#
# Beyond build+test, the robustness gates run (ISSUE 2 / 3 / 4 / 5):
#
#  * panic-site budget — the number of unwrap()/expect(/panic!( sites in
#    non-test library code must not grow past the recorded baseline;
#  * runner determinism — a RUNNER_THREADS=1 and a RUNNER_THREADS=4 run
#    of the table1 harness bin must print byte-identical tables;
#  * bench regression — a fresh run of the keyb micro-benchmarks must
#    leave synthesize_fsm/keyb, place_sa/keyb, route/keyb, and
#    verify_exhaustive/keyb each no more than 25% slower than the
#    committed baseline in results/bench_substrates.json, and the
#    batched exhaustive walk must stay at least 10x faster than the
#    scalar walk. Skip with VERIFY_SKIP_BENCH=1 on machines too noisy
#    to time (the gate itself, not the build, is skipped);
#  * table2 golden — the table2 bin's output must be byte-identical to
#    the committed results/table2_golden.txt;
#  * ECO base coordinates — table3's clock-controlled flows must pin
#    every base entity at exactly the plain design's coordinates (the
#    plain and gated-base coordinate digests per row are byte-identical);
#  * flow-cache growth — a second identical table3 run must be served
#    from the flow cache without growing results/cache/ at all;
#  * capped flow cache — a table3 run under FLOW_CACHE_MAX_BYTES=16384
#    must print byte-identical output and keep the store within budget;
#  * process-backend identity (ISSUE 6) — table1 and table3 re-run under
#    RUNNER_BACKEND=process with 4 worker processes must print the same
#    bytes as their serial runs (the byte-identity contract extends
#    verbatim to the multi-process fabric);
#  * daemon smoke (ISSUE 6) — fabric_daemon must serve a mapping request
#    over its Unix socket twice, report the repeat as warm-cache, and
#    shut down cleanly on request;
#  * chaos campaign (ISSUE 7) — table1 re-run under the process backend
#    with seeded wire-fault injection (hangs, mid-line kills, torn
#    writes, garbage, slow drips, early EOF on worker result lines) must
#    survive without a coordinator failure and print bytes identical to
#    the serial run;
#  * daemon deadline + drain (ISSUE 7) — a second daemon on a live
#    socket must refuse with the typed already-running exit (3), a
#    request past FABRIC_REQUEST_TIMEOUT_MS must get a typed `deadline`
#    reject, and a request-driven shutdown must finish in-flight work
#    while rejecting new work with a typed `draining` reject;
#  * STA / fmax gates (ISSUE 8) — table3's TABLE3_FMAX side file must
#    hold all 9 benchmarks with the timing-driven placer fmax estimate
#    no worse than the wirelength-only estimate on every row (the
#    guarded two-arm anneal makes this exact, not statistical), and a
#    warm-cache rerun must reproduce the file byte-for-byte (same seed
#    -> identical fmax digest). The bench gate additionally covers
#    place_timing_kernel/keyb, the incremental STA kernel microbench;
#  * corpus smoke (ISSUE 9) — corpus_stress must push 198 seeded
#    synthetic machines (22 per scenario tier) through the full flow on
#    every backend and the daemon, twice, with zero coordinator
#    failures, byte-identical outcome histograms across runs, and every
#    mapping rung and downgrade kind covered at least once; the
#    committed results/bench_corpus.json must additionally come from a
#    >= 1000-machine run with all throughput figures present
#    (including the derived daemon and overlay-pass FSMs/sec);
#  * overlay backend (ISSUE 10) — table_overlay must push the nine
#    paper benchmarks plus one machine per corpus tier through the
#    direct and overlay backends in one cache: every overlay-fit item
#    proven equivalent to its STG (zero verification failures), the
#    warm-base overlay compile at least 20x faster than the cold direct
#    flow (geomean over fit items), and a second overlay pass hitting
#    the stored base artifacts with zero re-place-and-routes. The
#    committed results/bench_overlay.json must hold the same
#    invariants.
#
# Usage: scripts/verify.sh [extra cargo test args...]
set -eu

cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

fail() {
    echo "verify.sh: $1" >&2
    exit 1
}

command -v cargo >/dev/null 2>&1 || fail "cargo not found on PATH"

echo "== cargo build --release --offline" >&2
cargo build --release --offline --workspace \
    || fail "release build failed (a registry-access error here means a Cargo.toml reintroduced an external dependency)"

echo "== cargo test -q --offline" >&2
cargo test -q --offline --workspace "$@" \
    || fail "test suite failed"

# -- Panic-site budget ------------------------------------------------------
# Counts unwrap()/expect(/panic!( in library sources (bins excluded, and
# everything below a file's `#[cfg(test)]` marker skipped — test modules
# sit at the bottom of each file in this workspace). The budget is the
# count recorded after the ISSUE 2 panic-sweep (lowered to 67 by the
# ISSUE 7 parse_request rework); lower it when you remove sites, never
# raise it without a review.
PANIC_BUDGET=67
echo "== panic-site budget (<= $PANIC_BUDGET)" >&2
panic_sites=$(find crates/*/src -name '*.rs' -not -path '*/src/bin/*' \
    | xargs awk 'FNR==1{skip=0} /#\[cfg\(test\)\]/{skip=1} !skip && /unwrap\(\)|expect\(|panic!\(/{n++} END{print n+0}')
echo "   $panic_sites panic sites in library code" >&2
[ "$panic_sites" -le "$PANIC_BUDGET" ] \
    || fail "panic-site count $panic_sites exceeds budget $PANIC_BUDGET (new unwrap/expect/panic! in library code — return a typed error instead, or lower the budget only with review)"

# -- Runner determinism gate ------------------------------------------------
# The same harness bin, serial then 4-way parallel, must print the same
# bytes: reassembly order, checkpointing, and the flow cache may not leak
# thread-count-dependent state into a table. The first run also warms the
# flow cache (results/cache/), so the second costs almost nothing.
echo "== runner determinism (table1, RUNNER_THREADS=1 vs 4)" >&2
RUNNER_THREADS=1 ./target/release/table1 > target/verify_table1_serial.out 2>/dev/null \
    || fail "serial table1 run failed"
RUNNER_THREADS=4 ./target/release/table1 > target/verify_table1_parallel.out 2>/dev/null \
    || fail "parallel table1 run failed"
cmp -s target/verify_table1_serial.out target/verify_table1_parallel.out \
    || fail "table1 output differs between RUNNER_THREADS=1 and RUNNER_THREADS=4"
echo "   serial and parallel table1 outputs are byte-identical" >&2

# -- Process-backend identity gate (table1) ---------------------------------
# The same bin again, but sharded over 4 worker *processes* (spawned
# --worker re-invocations of table1 itself). Rows travel over pipes and
# through the checkpoint-line codec, so identical bytes here prove the
# whole wire path is lossless and order-stable.
echo "== process-backend identity (table1, RUNNER_BACKEND=process, 4 workers)" >&2
RUNNER_BACKEND=process RUNNER_THREADS=4 \
    ./target/release/table1 > target/verify_table1_process.out 2>/dev/null \
    || fail "process-backend table1 run failed"
cmp -s target/verify_table1_serial.out target/verify_table1_process.out \
    || fail "table1 output differs between the serial and process backends"
echo "   process-backend table1 output is byte-identical to serial" >&2

# -- Chaos campaign gate (table1 under wire faults) -------------------------
# The same process-backend run once more, but with fabric::chaos armed in
# every worker: FABRIC_CHAOS_SEED draws a deterministic wire fault per
# item, so RESULT lines get torn, interleaved with garbage, dripped
# slowly, cut off by worker aborts, or withheld entirely behind a hang
# the per-item deadline must kill. Supervision (kill, respawn, strike,
# inline fallback) must absorb all of it: the run exits 0 and the table
# bytes match the serial run exactly. Seed 5 is pinned by a unit test
# (chaos::tests) to draw at most two hangs over the MCNC nine, keeping
# this gate's worst case around four deadline windows.
echo "== chaos campaign (table1, FABRIC_CHAOS_SEED=5, wire faults)" >&2
RUNNER_BACKEND=process RUNNER_THREADS=4 RUNNER_ITEM_TIMEOUT_MS=2000 \
    RUNNER_BACKOFF_BASE_MS=10 FABRIC_CHAOS_SEED=5 FABRIC_CHAOS_HANG_MS=60000 \
    ./target/release/table1 > target/verify_table1_chaos.out 2>/dev/null \
    || fail "chaos-campaign table1 run failed (coordinator did not survive wire faults)"
cmp -s target/verify_table1_serial.out target/verify_table1_chaos.out \
    || fail "table1 output differs under wire-fault injection"
echo "   table1 byte-identical under injected wire faults" >&2

# -- Bench regression gate --------------------------------------------------
if [ "${VERIFY_SKIP_BENCH:-0}" = "1" ]; then
    echo "== bench regression gate skipped (VERIFY_SKIP_BENCH=1)" >&2
else
    echo "== bench regression gate (keyb substrates, fresh vs committed)" >&2
    fresh_dir=target/bench_fresh
    rm -rf "$fresh_dir"
    BENCH_FILTER=keyb BENCH_RESULTS_DIR="$fresh_dir" \
        cargo bench -q --offline -p paper-bench --bench substrates \
        || fail "bench run failed"
    for gate in synthesize_fsm/keyb place_sa/keyb place_timing_kernel/keyb route/keyb verify_exhaustive/keyb; do
        baseline=$(sed -n 's#.*"name": "'"$gate"'", "median_ns": \([0-9.]*\).*#\1#p' \
            results/bench_substrates.json)
        [ -n "$baseline" ] || fail "no $gate baseline in results/bench_substrates.json"
        fresh=$(sed -n 's#.*"name": "'"$gate"'", "median_ns": \([0-9.]*\).*#\1#p' \
            "$fresh_dir/bench_substrates.json")
        [ -n "$fresh" ] || fail "fresh bench run produced no $gate result"
        echo "   $gate: baseline ${baseline} ns, fresh ${fresh} ns" >&2
        awk -v fresh="$fresh" -v base="$baseline" 'BEGIN{exit !(fresh <= base * 1.25)}' \
            || fail "$gate regressed: fresh ${fresh} ns > 1.25 x baseline ${baseline} ns"
    done
    # The bit-parallel kernel must keep paying for itself: the batched
    # exhaustive walk must beat the scalar walk by at least 10x on keyb
    # (it runs 64 input vectors per word; measured ratio is ~15x, so 10x
    # leaves headroom for noise without letting the kernel quietly rot
    # back to scalar speed).
    batched=$(sed -n 's#.*"name": "verify_exhaustive/keyb", "median_ns": \([0-9.]*\).*#\1#p' \
        "$fresh_dir/bench_substrates.json")
    scalar=$(sed -n 's#.*"name": "verify_exhaustive_scalar/keyb", "median_ns": \([0-9.]*\).*#\1#p' \
        "$fresh_dir/bench_substrates.json")
    [ -n "$batched" ] && [ -n "$scalar" ] \
        || fail "fresh bench run is missing a verify_exhaustive result"
    awk -v b="$batched" -v s="$scalar" 'BEGIN{exit !(s >= b * 10)}' \
        || fail "batched exhaustive verify is under 10x the scalar walk (batched ${batched} ns, scalar ${scalar} ns)"
    echo "   verify_exhaustive/keyb speedup: $(awk -v b="$batched" -v s="$scalar" 'BEGIN{printf "%.1f", s / b}')x over scalar (>= 10x required)" >&2
fi

# -- Table 2 golden gate ----------------------------------------------------
# Table 2 is the paper's headline result and the one table whose numbers
# flow through the bit-parallel activity path, so it is pinned to a
# committed golden byte-for-byte. A legitimate model change must update
# results/table2_golden.txt in the same commit, with the diff in review.
echo "== table2 golden gate (vs results/table2_golden.txt)" >&2
./target/release/table2 > target/verify_table2.out 2>/dev/null \
    || fail "table2 run failed"
cmp -s results/table2_golden.txt target/verify_table2.out \
    || fail "table2 output differs from results/table2_golden.txt (power numbers moved — if intentional, regenerate the golden in this commit)"
echo "   table2 byte-identical to the committed golden" >&2

# -- ECO base-coordinate gate -----------------------------------------------
# table3 appends "name <plain-digest> <gated-base-digest>" per successful
# row to $TABLE3_COORDS. ECO placement's whole claim is that the gated
# design's base entities sit at EXACTLY the plain design's coordinates,
# so the two digests must be byte-identical — and a missing row means a
# benchmark silently fell back to full placement.
echo "== ECO base-coordinate gate (table3 plain vs gated digests)" >&2
coords=target/verify_table3_coords.txt
fmaxf=target/verify_table3_fmax.txt
TABLE3_COORDS="$coords" TABLE3_FMAX="$fmaxf" \
    ./target/release/table3 > target/verify_table3.out 2>/dev/null \
    || fail "table3 run failed"
[ -s "$coords" ] || fail "table3 wrote no coordinate digests"
rows=$(wc -l < "$coords")
[ "$rows" -eq 9 ] \
    || fail "expected 9 coordinate rows, got $rows (a benchmark fell back to full placement)"
while read -r name plain gated; do
    [ -n "$plain" ] && [ "$plain" = "$gated" ] \
        || fail "$name: gated base coordinates differ from the plain placement"
done < "$coords"
echo "   all 9 benchmarks: gated base coordinates byte-identical to plain" >&2

# -- Timing-driven fmax no-worse gate ---------------------------------------
# table3 appends "name <est-fmax-timing> <est-fmax-wl>" per successful
# row: the placer's STA estimate under the default timing-driven anneal
# and under the identical flow placed wirelength-only. The guarded
# two-arm selection makes timing-driven >= wirelength-only exact on
# every row — a single regressed row means the guard broke.
echo "== timing-driven fmax no-worse gate (table3 estimate vs wirelength-only)" >&2
[ -s "$fmaxf" ] || fail "table3 wrote no fmax estimates"
fmax_rows=$(wc -l < "$fmaxf")
[ "$fmax_rows" -eq 9 ] \
    || fail "expected 9 fmax rows, got $fmax_rows (a benchmark fell out of the fmax side file)"
while read -r name ft fw; do
    awk -v t="$ft" -v w="$fw" 'BEGIN{exit !(t >= w)}' \
        || fail "$name: timing-driven fmax estimate $ft MHz is worse than wirelength-only $fw MHz"
done < "$fmaxf"
echo "   all 9 benchmarks: timing-driven fmax estimate no worse than wirelength-only" >&2

# -- Flow-cache growth bound ------------------------------------------------
# Keys are deterministic, so a second identical table3 run must be served
# entirely from the warm cache: any growth of results/cache/ means a key
# is unstable and the cache re-stores artifacts it should be hitting.
echo "== flow-cache growth bound (second table3 run)" >&2
size_mid=$(du -sk results/cache 2>/dev/null | cut -f1)
size_mid=${size_mid:-0}
TABLE3_COORDS="$coords" TABLE3_FMAX=target/verify_table3_fmax_again.txt \
    ./target/release/table3 > target/verify_table3_again.out 2>/dev/null \
    || fail "second table3 run failed"
size_after=$(du -sk results/cache 2>/dev/null | cut -f1)
size_after=${size_after:-0}
[ "$size_after" -le "$size_mid" ] \
    || fail "flow cache grew from ${size_mid}kB to ${size_after}kB on an identical rerun (unstable cache keys)"
cmp -s target/verify_table3.out target/verify_table3_again.out \
    || fail "table3 output differs between warm-cache reruns"
# STA determinism: same seed -> identical fmax digest across the 2 runs.
cmp -s "$fmaxf" target/verify_table3_fmax_again.txt \
    || fail "table3 fmax estimates differ between identical runs (non-deterministic STA)"
echo "   cache stable at ${size_after}kB; rerun output and fmax digests byte-identical" >&2

# -- Capped flow-cache gate -------------------------------------------------
# The same table3 run against a fresh store capped by FLOW_CACHE_MAX_BYTES
# must (a) print byte-identical output — eviction changes what stays
# cached, never what a flow computes — and (b) leave the store's record
# files within the byte budget.
tiny_budget=16384
echo "== capped flow-cache gate (FLOW_CACHE_MAX_BYTES=$tiny_budget)" >&2
tiny_dir=target/verify_cache_tiny
rm -rf "$tiny_dir"
FLOW_CACHE_DIR="$tiny_dir" FLOW_CACHE_MAX_BYTES="$tiny_budget" \
    ./target/release/table3 > target/verify_table3_tiny.out 2>/dev/null \
    || fail "capped-cache table3 run failed"
cmp -s target/verify_table3.out target/verify_table3_tiny.out \
    || fail "table3 output differs under a capped flow cache (eviction leaked into results)"
tiny_size=$(find "$tiny_dir" -name '*.txt' -type f -exec wc -c {} \; \
    | awk '{s+=$1} END{print s+0}')
[ "$tiny_size" -le "$tiny_budget" ] \
    || fail "capped store holds ${tiny_size} bytes, budget is ${tiny_budget} (eviction not enforced)"
echo "   capped store at ${tiny_size}/${tiny_budget} bytes; output byte-identical" >&2

# -- Process-backend identity gate (table3) ---------------------------------
# table3 is the heavier harness (four flows per benchmark, ECO placement,
# flow-cache traffic from every worker into the shared store); its
# process-backend run must still match the serial output byte-for-byte.
# The cache is warm from the gates above, so this costs seconds.
echo "== process-backend identity (table3, RUNNER_BACKEND=process, 4 workers)" >&2
RUNNER_BACKEND=process RUNNER_THREADS=4 \
    ./target/release/table3 > target/verify_table3_process.out 2>/dev/null \
    || fail "process-backend table3 run failed"
cmp -s target/verify_table3.out target/verify_table3_process.out \
    || fail "table3 output differs between the serial and process backends"
echo "   process-backend table3 output is byte-identical to serial" >&2

# -- Daemon smoke gate -------------------------------------------------------
# Start the mapping daemon, ask it the same benchmark twice over the Unix
# socket, and require the repeat to be served entirely from the warm flow
# cache ("warm":true = zero misses); then a clean request-driven shutdown.
echo "== daemon smoke (fabric_daemon map keyb x2, warm repeat, shutdown)" >&2
fabric_sock=target/verify_fabric.sock
rm -f "$fabric_sock"
./target/release/fabric_daemon --socket "$fabric_sock" --max-inflight 2 2>/dev/null &
daemon_pid=$!
i=0
while [ ! -S "$fabric_sock" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { kill "$daemon_pid" 2>/dev/null; fail "daemon socket never appeared"; }
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited before binding its socket"
    sleep 0.1
done
./target/release/fabric_client --socket "$fabric_sock" map keyb > target/verify_daemon_1.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "first daemon mapping request failed"; }
./target/release/fabric_client --socket "$fabric_sock" map keyb > target/verify_daemon_2.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "second daemon mapping request failed"; }
grep -q '"warm":true' target/verify_daemon_2.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "repeat daemon request was not served from warm cache"; }
./target/release/fabric_client --socket "$fabric_sock" shutdown > /dev/null \
    || { kill "$daemon_pid" 2>/dev/null; fail "daemon shutdown request failed"; }
wait "$daemon_pid" || fail "daemon exited non-zero after shutdown"
[ ! -S "$fabric_sock" ] || fail "daemon left its socket file behind"
echo "   daemon served a warm repeat and shut down cleanly" >&2

# -- Daemon deadline + drain gate -------------------------------------------
# Lifecycle hardening, end to end over the real socket: a duplicate
# daemon must probe the live socket and refuse with exit 3 (typed
# already-running, first daemon unharmed); a request that outlives
# FABRIC_REQUEST_TIMEOUT_MS must get a typed `deadline` reject; and a
# request-driven shutdown must drain — the in-flight sleep finishes,
# new work gets a typed `draining` reject, the daemon exits 0 and
# removes its socket.
echo "== daemon deadline + drain (duplicate bind, deadline reject, graceful drain)" >&2
rm -f "$fabric_sock"
FABRIC_REQUEST_TIMEOUT_MS=1000 \
    ./target/release/fabric_daemon --socket "$fabric_sock" --max-inflight 2 2>/dev/null &
daemon_pid=$!
i=0
while [ ! -S "$fabric_sock" ]; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { kill "$daemon_pid" 2>/dev/null; fail "daemon socket never appeared"; }
    kill -0 "$daemon_pid" 2>/dev/null || fail "daemon exited before binding its socket"
    sleep 0.1
done
set +e
./target/release/fabric_daemon --socket "$fabric_sock" 2>/dev/null
dup_rc=$?
set -e
[ "$dup_rc" -eq 3 ] \
    || { kill "$daemon_pid" 2>/dev/null; fail "duplicate daemon exited $dup_rc, expected the typed already-running exit 3"; }
kill -0 "$daemon_pid" 2>/dev/null \
    || fail "duplicate bind attempt took down the live daemon"
./target/release/fabric_client --socket "$fabric_sock" sleep 5000 \
    > target/verify_daemon_deadline.out 2>/dev/null || true
grep -q '"kind":"deadline"' target/verify_daemon_deadline.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "over-deadline request did not get a typed deadline reject"; }
./target/release/fabric_client --socket "$fabric_sock" sleep 800 \
    > target/verify_daemon_drain.out 2>/dev/null &
drain_client=$!
i=0
until ./target/release/fabric_client --socket "$fabric_sock" stats 2>/dev/null \
    | grep -q '"inflight":2'; do
    i=$((i + 1))
    [ "$i" -le 100 ] || { kill "$daemon_pid" 2>/dev/null; fail "drain sleep request never went in flight"; }
    sleep 0.05
done
./target/release/fabric_client --socket "$fabric_sock" shutdown > /dev/null \
    || { kill "$daemon_pid" 2>/dev/null; fail "drain shutdown request failed"; }
./target/release/fabric_client --socket "$fabric_sock" map keyb \
    > target/verify_daemon_draining.out 2>/dev/null || true
grep -q '"kind":"draining"' target/verify_daemon_draining.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "new work during drain did not get a typed draining reject"; }
wait "$drain_client" \
    || { kill "$daemon_pid" 2>/dev/null; fail "in-flight request was cut off by the drain"; }
grep -q '"slept_ms":800' target/verify_daemon_drain.out \
    || { kill "$daemon_pid" 2>/dev/null; fail "in-flight work did not complete during drain"; }
wait "$daemon_pid" || fail "daemon exited non-zero after drain"
[ ! -S "$fabric_sock" ] || fail "daemon left its socket file behind after drain"
echo "   duplicate bind refused (exit 3); deadline and draining rejects typed; drain completed in-flight work" >&2

# -- Corpus smoke gate -------------------------------------------------------
# ~200 synthetic machines (22 per tier x 9 tiers) through the full flow
# under the degradation ladder, on every runner backend, the forced
# overlay-auto pass, and the daemon, twice with the same fixed seed.
# corpus_stress itself asserts zero coordinator failures and identical
# deterministic row prefixes (the trailing stage-timing column is
# measurement, not outcome) across the sequential, thread, and process
# backends; this gate adds (a) run-to-run stdout
# determinism (the per-tier outcome histograms), and (b) full ladder
# coverage — no rung and no downgrade kind at zero. Timings go to a
# scratch BENCH_RESULTS_DIR so the committed results/bench_corpus.json
# (from the full >=1000-machine run) is never clobbered.
echo "== corpus smoke (22/tier x 9 tiers, 2 runs, deterministic histogram)" >&2
rm -rf target/verify_corpus
CORPUS_PER_TIER=22 BENCH_RESULTS_DIR=target/verify_corpus \
    ./target/release/corpus_stress > target/verify_corpus_1.out 2>/dev/null \
    || fail "first corpus_stress run failed (coordinator failure or backend divergence)"
CORPUS_PER_TIER=22 BENCH_RESULTS_DIR=target/verify_corpus \
    ./target/release/corpus_stress > target/verify_corpus_2.out 2>/dev/null \
    || fail "second corpus_stress run failed"
cmp -s target/verify_corpus_1.out target/verify_corpus_2.out \
    || fail "corpus_stress outcome histogram differs between identical runs"
grep -Eq '^(rung|downgrade) .*: 0$' target/verify_corpus_1.out \
    && fail "a mapping rung or downgrade kind has zero corpus coverage (see target/verify_corpus_1.out)"
[ -s target/verify_corpus/bench_corpus.json ] \
    || fail "corpus_stress wrote no bench_corpus.json"
echo "   198 machines x 2 runs: histograms byte-identical, full ladder coverage" >&2

# -- Committed corpus-throughput artifact ------------------------------------
# The committed results/bench_corpus.json must come from a full run:
# >= 1000 machines, zero coordinator failures, and all three throughput
# figures (serial / parallel / warm-cache) present.
echo "== committed bench_corpus.json sanity" >&2
[ -s results/bench_corpus.json ] || fail "results/bench_corpus.json is missing"
corpus_machines=$(sed -n 's/.*"machines": \([0-9]*\).*/\1/p' results/bench_corpus.json)
[ -n "$corpus_machines" ] && [ "$corpus_machines" -ge 1000 ] \
    || fail "committed bench_corpus.json covers ${corpus_machines:-0} machines, need >= 1000 (regenerate with ./target/release/corpus_stress)"
grep -q '"coordinator_failures": 0' results/bench_corpus.json \
    || fail "committed bench_corpus.json records coordinator failures"
for field in fsms_per_sec_serial fsms_per_sec_parallel fsms_per_sec_warm \
    fsms_per_sec_overlay fsms_per_sec_daemon; do
    grep -q "\"$field\":" results/bench_corpus.json \
        || fail "committed bench_corpus.json is missing $field"
done
echo "   committed corpus run: $corpus_machines machines, zero coordinator failures" >&2

# -- Overlay backend gate -----------------------------------------------------
# table_overlay runs the 18-item comparison (nine paper benchmarks + one
# machine per corpus tier) through four phases in one scratch cache:
# cold direct, overlay base prebuild (with a full verify_rewrite
# equivalence proof per fit item), warm-base overlay compile, and a
# second overlay pass that must be served entirely from the stored base
# artifacts. The bin itself aborts on a verification failure; this gate
# re-checks the JSON and enforces the headline turnaround claim.
echo "== overlay backend gate (table_overlay, fresh run)" >&2
rm -rf target/verify_overlay
BENCH_RESULTS_DIR=target/verify_overlay \
    ./target/release/table_overlay > target/verify_overlay.out 2>/dev/null \
    || fail "table_overlay run failed (overlay verification or flow failure)"
overlay_json=target/verify_overlay/bench_overlay.json
[ -s "$overlay_json" ] || fail "table_overlay wrote no bench_overlay.json"
check_overlay_json() {
    f=$1
    label=$2
    grep -q '"verify_failures": 0' "$f" \
        || fail "$label records overlay verification failures"
    grep -q '"second_run_base_misses": 0' "$f" \
        || fail "$label: second overlay pass re-placed a base (unstable base artifact keys)"
    grep -q '"phase_c_base_misses": 0' "$f" \
        || fail "$label: warm-base compile missed a stored base artifact"
    speedup=$(sed -n 's/.*"fit_geomean_speedup": \([0-9.]*\).*/\1/p' "$f")
    [ -n "$speedup" ] || fail "$label is missing fit_geomean_speedup"
    awk -v s="$speedup" 'BEGIN{exit !(s >= 20)}' \
        || fail "$label: overlay compile speedup ${speedup}x is under the 20x turnaround claim"
    fit=$(sed -n 's/.*"items_fit": \([0-9]*\).*/\1/p' "$f")
    [ -n "$fit" ] && [ "$fit" -ge 10 ] \
        || fail "$label: only ${fit:-0} overlay-fit items, expected >= 10 of 18"
    echo "   $label: ${fit} fit items, ${speedup}x geomean speedup, zero verify failures, zero base re-P&Rs" >&2
}
check_overlay_json "$overlay_json" "fresh bench_overlay.json"

# -- Committed overlay artifact ----------------------------------------------
echo "== committed bench_overlay.json sanity" >&2
[ -s results/bench_overlay.json ] || fail "results/bench_overlay.json is missing"
check_overlay_json results/bench_overlay.json "committed bench_overlay.json"

echo "verify.sh: OK" >&2
