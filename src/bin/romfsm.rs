//! `romfsm` — command-line front end to the DATE 2004 reproduction.
//!
//! ```text
//! romfsm info <fsm.kiss2>                     machine statistics
//! romfsm map <fsm.kiss2> [opts]               EMB mapping report
//! romfsm synth <fsm.kiss2> [opts]             FF/LUT synthesis report
//! romfsm compare <fsm.kiss2> [opts]           both flows + power table
//! romfsm generate [opts]                      synthetic KISS2 to stdout
//! romfsm bench <name>                         dump a paper benchmark as KISS2
//! ```
//!
//! `<fsm.kiss2>` may be `-` for stdin. Run `romfsm help` for all options.

use romfsm::emb::flow::{
    emb_clock_controlled_flow, emb_flow, ff_flow, FlowConfig, FlowReport, MapBackend, Stimulus,
};
use romfsm::emb::map::{map_fsm_into_embs, AddressPlan, EmbOptions, OutputMode};
use romfsm::fsm::encoding::EncodingStyle;
use romfsm::fsm::{analysis, kiss2, machine, Stg};
use romfsm::logic::synth::{synthesize, SynthOptions};
use std::io::Read as _;
use std::process::ExitCode;

const HELP: &str = "\
romfsm — FSMs in FPGA embedded memory blocks (DATE 2004 reproduction)

USAGE:
  romfsm info <fsm.kiss2>
  romfsm map <fsm.kiss2> [--lut-outputs] [--no-compaction] [--memory-map]
                         [--vhdl <out.vhd>]
  romfsm synth <fsm.kiss2> [--encoding binary|gray|onehot] [--blif <out.blif>]
                           [--vhdl <out.vhd>] [--minimize]
  romfsm compare <fsm.kiss2> [--idle <0..1>] [--cycles <n>] [--clock-control]
                             [--minimize] [--backend direct|overlay|auto]
  romfsm generate --states <n> --inputs <n> --outputs <n>
                  [--transitions <n>] [--seed <n>] [--moore] [--idle-line]
                  [--dont-care-density <0..1>] [--fanout-skew <k>]
  romfsm bench <prep4|dk16|tbk|keyb|donfile|sand|styr|ex1|planet>
  romfsm dot <fsm.kiss2> [--lr]

Use '-' as the file to read KISS2 from stdin.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("romfsm: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        print!("{HELP}");
        return Ok(());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(())
        }
        "info" => cmd_info(rest),
        "map" => cmd_map(rest),
        "synth" => cmd_synth(rest),
        "compare" => cmd_compare(rest),
        "generate" => cmd_generate(rest),
        "bench" => cmd_bench(rest),
        "dot" => cmd_dot(rest),
        other => Err(format!("unknown command {other:?}; try `romfsm help`")),
    }
}

/// Minimal flag parser: positional args plus `--flag [value]` pairs.
#[derive(Debug, Default)]
struct Flags {
    positional: Vec<String>,
    options: Vec<(String, Option<String>)>,
}

/// Flags that take a value (everything else is boolean).
const VALUED: &[&str] = &[
    "--vhdl",
    "--blif",
    "--encoding",
    "--idle",
    "--cycles",
    "--states",
    "--inputs",
    "--outputs",
    "--transitions",
    "--dont-care-density",
    "--fanout-skew",
    "--seed",
    "--backend",
];

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(name) = a.strip_prefix("--") {
            let key = format!("--{name}");
            if VALUED.contains(&key.as_str()) {
                let v = args
                    .get(i + 1)
                    .ok_or_else(|| format!("{key} needs a value"))?;
                f.options.push((key, Some(v.clone())));
                i += 2;
            } else {
                f.options.push((key, None));
                i += 1;
            }
        } else {
            f.positional.push(a.clone());
            i += 1;
        }
    }
    Ok(f)
}

impl Flags {
    fn has(&self, key: &str) -> bool {
        self.options.iter().any(|(k, _)| k == key)
    }
    fn value(&self, key: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_deref())
    }
    fn number<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.value(key)
            .map(|v| v.parse().map_err(|_| format!("{key}: bad number {v:?}")))
            .transpose()
    }
}

fn load_stg(flags: &Flags) -> Result<Stg, String> {
    let path = flags
        .positional
        .first()
        .ok_or("missing KISS2 file argument (or '-')")?;
    let (text, name) = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| e.to_string())?;
        (s, "stdin".to_string())
    } else {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("fsm")
            .to_string();
        (text, name)
    };
    kiss2::parse(&text, &name).map_err(|e| e.to_string())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let stg = load_stg(&flags)?;
    let st = analysis::stats(&stg);
    println!("machine       {}", stg.name());
    println!("kind          {}", machine::classify(&stg));
    println!("states        {}", st.states);
    println!("inputs        {}", st.inputs);
    println!("outputs       {}", st.outputs);
    println!("transitions   {}", st.transitions);
    println!("self loops    {}", st.self_loops);
    println!("input dc      {:.0}%", st.input_dc_density * 100.0);
    println!(
        "max support   {} (column compaction width)",
        st.max_input_support
    );
    println!(
        "reachable     {}/{}",
        analysis::reachable_states(&stg).len(),
        st.states
    );
    println!("deterministic {}", stg.is_deterministic());
    println!("complete      {}", stg.is_complete());
    Ok(())
}

fn cmd_map(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let stg = load_stg(&flags)?;
    let opts = EmbOptions {
        output_mode: if flags.has("--lut-outputs") {
            OutputMode::MooreLuts
        } else {
            OutputMode::Auto
        },
        allow_compaction: !flags.has("--no-compaction"),
        ..EmbOptions::default()
    };
    let emb = map_fsm_into_embs(&stg, &opts).map_err(|e| e.to_string())?;
    println!("machine      {}", stg.name());
    println!("state bits   {}", emb.num_state_bits());
    println!("shape        {}", emb.shape);
    println!(
        "brams        {} ({} bank(s) x {} parallel)",
        emb.num_brams(),
        emb.banks,
        emb.parallel
    );
    println!("address bits {}", emb.logical_addr_bits());
    println!(
        "addressing   {}",
        match &emb.address {
            AddressPlan::Direct => "direct (raw inputs)".to_string(),
            AddressPlan::Compacted(p) => format!("compacted to {} columns via input mux", p.width),
        }
    );
    println!("aux LUTs     {}", emb.aux_luts());
    if flags.has("--memory-map") {
        let input_bits = emb.address.input_bits(stg.num_inputs());
        let outs = match emb.outputs {
            romfsm::emb::map::OutputRealization::InMemory => emb.stg.num_outputs(),
            romfsm::emb::map::OutputRealization::Luts(_) => 0,
        };
        println!();
        print!(
            "{}",
            romfsm::emb::contents::memory_map_table(
                &emb.stg,
                &emb.encoding,
                &emb.rom,
                input_bits,
                outs
            )
        );
    }
    if let Some(path) = flags.value("--vhdl") {
        let vhdl = romfsm::emb::vhdl::render(&emb.to_netlist());
        std::fs::write(path, vhdl).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote VHDL to {path}");
    }
    Ok(())
}

fn parse_encoding(flags: &Flags) -> Result<EncodingStyle, String> {
    match flags.value("--encoding") {
        None | Some("binary") => Ok(EncodingStyle::Binary),
        Some("gray") => Ok(EncodingStyle::Gray),
        Some("onehot") | Some("one-hot") => Ok(EncodingStyle::OneHotZero),
        Some(other) => Err(format!("unknown encoding {other:?}")),
    }
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let mut stg = load_stg(&flags)?;
    if flags.has("--minimize") {
        let before = stg.num_states();
        stg = romfsm::fsm::minimize::minimize(&stg)?.stg;
        println!("minimized  {} -> {} states", before, stg.num_states());
    }
    let opts = SynthOptions {
        encoding: parse_encoding(&flags)?,
        ..SynthOptions::default()
    };
    let synth = synthesize(&stg, opts).map_err(|e| e.to_string())?;
    println!("machine    {}", stg.name());
    println!("encoding   {}", opts.encoding);
    println!("state bits {}", synth.num_state_bits());
    println!("cubes      {}", synth.total_cubes);
    println!("LUT4s      {}", synth.luts.num_luts());
    println!("LUT depth  {}", synth.luts.depth());
    if let Some(path) = flags.value("--blif") {
        let blif = romfsm::logic::blif::write(&synth.to_blif());
        std::fs::write(path, blif).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote BLIF to {path}");
    }
    if let Some(path) = flags.value("--vhdl") {
        let (netlist, _) = romfsm::emb::baseline::ff_netlist(&synth, false);
        let vhdl = romfsm::emb::vhdl::render(&netlist);
        std::fs::write(path, vhdl).map_err(|e| format!("{path}: {e}"))?;
        println!("wrote VHDL to {path}");
    }
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let stg = load_stg(&flags)?;
    let idle: Option<f64> = flags.number("--idle")?;
    let cycles: usize = flags.number("--cycles")?.unwrap_or(2000);
    let mut cfg = FlowConfig {
        cycles,
        minimize_states: flags.has("--minimize"),
        ..FlowConfig::default()
    };
    if let Some(b) = flags.value("--backend") {
        cfg.backend = MapBackend::parse(b)
            .ok_or_else(|| format!("--backend must be direct, overlay or auto, got '{b}'"))?;
    }
    let stim = match idle {
        Some(p) => Stimulus::IdleBiased(p),
        None => Stimulus::Random,
    };
    let ff = ff_flow(&stg, SynthOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
    let emb = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).map_err(|e| e.to_string())?;
    let show = |r: &FlowReport| {
        println!(
            "{:12} {:40} fmax {:6.1} MHz  idle {:3.0}%",
            r.kind.to_string(),
            r.area.to_string(),
            r.timing.fmax_mhz,
            r.idle_fraction * 100.0
        );
        for p in &r.power {
            println!("  {:>5.0} MHz: {:8.2} mW", p.freq_mhz, p.total_mw());
        }
    };
    show(&ff);
    show(&emb);
    if let Some(o) = &emb.overlay {
        println!(
            "  overlay class {} ({} bank{}, base {})",
            o.class,
            o.banks,
            if o.banks == 1 { "" } else { "s" },
            if o.base_cache_hit { "cached" } else { "built" }
        );
    }
    for d in &emb.downgrades {
        println!("  downgrade: {d}");
    }
    if flags.has("--clock-control") {
        let cc = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg)
            .map_err(|e| e.to_string())?;
        show(&cc);
        if let Some(stats) = cc.clock_control {
            println!(
                "  control logic: {} LUTs / {} slices",
                stats.luts, stats.slices
            );
        }
    }
    let pf = ff.power_at(100.0).expect("100MHz").total_mw();
    let pe = emb.power_at(100.0).expect("100MHz").total_mw();
    println!("EMB saving at 100 MHz: {:.1}%", 100.0 * (pf - pe) / pf);
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let states: usize = flags.number("--states")?.ok_or("--states required")?;
    let inputs: usize = flags.number("--inputs")?.ok_or("--inputs required")?;
    let outputs: usize = flags.number("--outputs")?.ok_or("--outputs required")?;
    let spec = romfsm::fsm::generate::StgSpec {
        name: "generated".to_string(),
        states,
        inputs,
        outputs,
        transitions: flags.number("--transitions")?.unwrap_or(states * 3),
        max_support: None,
        self_loop_bias: 0.2,
        moore: flags.has("--moore"),
        idle_line: if flags.has("--idle-line") {
            Some(0)
        } else {
            None
        },
        dont_care_density: flags.number("--dont-care-density")?.unwrap_or(0.0),
        fanout_skew: flags.number("--fanout-skew")?.unwrap_or(0.0),
        seed: flags.number("--seed")?.unwrap_or(1),
    };
    let stg = romfsm::fsm::generate::generate(&spec).map_err(|e| e.to_string())?;
    print!("{}", kiss2::write(&stg));
    Ok(())
}

fn cmd_dot(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let stg = load_stg(&flags)?;
    let opts = romfsm::fsm::dot::DotOptions {
        left_to_right: flags.has("--lr"),
        ..romfsm::fsm::dot::DotOptions::default()
    };
    print!("{}", romfsm::fsm::dot::render(&stg, &opts));
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args)?;
    let name = flags
        .positional
        .first()
        .ok_or("missing benchmark name; try `romfsm bench planet`")?;
    let stg = romfsm::fsm::benchmarks::by_name(name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    print!("{}", kiss2::write(&stg));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn flags_parse_positional_and_options() {
        let f = parse_flags(&s(&["file.kiss2", "--idle", "0.5", "--memory-map"])).unwrap();
        assert_eq!(f.positional, vec!["file.kiss2"]);
        assert_eq!(f.value("--idle"), Some("0.5"));
        assert!(f.has("--memory-map"));
        assert!(!f.has("--vhdl"));
    }

    #[test]
    fn valued_flag_without_value_errors() {
        assert!(parse_flags(&s(&["--vhdl"])).is_err());
    }

    #[test]
    fn numbers_parse_and_reject() {
        let f = parse_flags(&s(&["--cycles", "100"])).unwrap();
        assert_eq!(f.number::<usize>("--cycles").unwrap(), Some(100));
        let f = parse_flags(&s(&["--cycles", "zap"])).unwrap();
        assert!(f.number::<usize>("--cycles").is_err());
    }

    #[test]
    fn generator_shape_knobs_take_values() {
        // A flag missing from VALUED degrades silently (boolean + stray
        // positional), so pin the generate shape knobs as valued.
        let f = parse_flags(&s(&["--dont-care-density", "0.4", "--fanout-skew", "1.5"])).unwrap();
        assert_eq!(f.number::<f64>("--dont-care-density").unwrap(), Some(0.4));
        assert_eq!(f.number::<f64>("--fanout-skew").unwrap(), Some(1.5));
        assert!(f.positional.is_empty());
    }

    #[test]
    fn backend_flag_takes_a_value() {
        let f = parse_flags(&s(&["--backend", "overlay"])).unwrap();
        assert_eq!(f.value("--backend"), Some("overlay"));
        assert!(f.positional.is_empty());
        assert!(parse_flags(&s(&["--backend"])).is_err());
    }

    #[test]
    fn unknown_command_is_reported() {
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn bench_names_resolve() {
        assert!(run(&s(&["bench", "nonesuch"])).is_err());
    }

    #[test]
    fn encoding_parses() {
        let f = parse_flags(&s(&["--encoding", "gray"])).unwrap();
        assert_eq!(parse_encoding(&f).unwrap(), EncodingStyle::Gray);
        let f = parse_flags(&s(&["--encoding", "purple"])).unwrap();
        assert!(parse_encoding(&f).is_err());
    }
}
