//! # romfsm — FSMs in FPGA embedded memory blocks
//!
//! Facade crate for the reproduction of *"Saving Power by Mapping
//! Finite-State Machines into Embedded Memory Blocks in FPGAs"* (Tiwari &
//! Tomko, DATE 2004). Re-exports every workspace crate under one roof so
//! the examples and integration tests can say `use romfsm::...`.
//!
//! * [`fsm`] — STG model, KISS2, encodings, reference simulation.
//! * [`logic`] — two-level minimization, boolean networks, LUT mapping.
//! * [`fpga`] — Virtex-II-like device model, packing, placement, routing.
//! * [`sim`] — cycle-based netlist simulation with activity recording.
//! * [`power`] — switching-activity-driven power estimation.
//! * [`emb`] — the paper's contribution: `Map_FSM_in_EMBs`, column
//!   compaction, clock control and the end-to-end comparison flows.
//!
//! # Examples
//!
//! ```
//! use romfsm::fsm::benchmarks::sequence_detector_0101;
//!
//! let stg = sequence_detector_0101();
//! assert_eq!(stg.num_states(), 4);
//! ```

#![warn(missing_docs)]

pub use emb_fsm as emb;
pub use fpga_fabric as fpga;
pub use fsm_model as fsm;
pub use logic_synth as logic;
pub use netsim as sim;
pub use powermodel as power;
