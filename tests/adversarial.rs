//! Adversarial KISS2 corpus: every malformed or degenerate input must
//! produce a typed error (or a valid report) — never a panic.
//!
//! Two layers are attacked:
//!
//! 1. the parser (`fsm::kiss2::parse`) with malformed headers, count
//!    mismatches, width mismatches, duplicate transitions and
//!    don't-care-only rows;
//! 2. the flow (`emb::flow`) with the degenerate-but-parseable machines
//!    the corpus yields (0-input machines, single-state machines,
//!    don't-care-only rows).

use romfsm::emb::flow::{emb_flow, ff_flow, FlowConfig, Stimulus};
use romfsm::emb::map::EmbOptions;
use romfsm::fpga::place::PlaceOptions;
use romfsm::fsm::kiss2::{self, ParseKiss2Error};
use romfsm::logic::synth::SynthOptions;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        cycles: 400,
        verify_cycles: 100,
        place: PlaceOptions {
            seed: 1,
            effort: 1.0,
            ..PlaceOptions::default()
        },
        ..FlowConfig::default()
    }
}

/// Parses adversarial text inside `catch_unwind`: the parser must return
/// `Err`, not panic, and not succeed.
fn must_reject(label: &str, text: &str) -> ParseKiss2Error {
    let outcome = catch_unwind(AssertUnwindSafe(|| kiss2::parse(text, label)));
    match outcome {
        Ok(Err(e)) => e,
        Ok(Ok(_)) => panic!("{label}: adversarial input parsed successfully"),
        Err(_) => panic!("{label}: parser PANICKED instead of returning an error"),
    }
}

#[test]
fn malformed_headers_are_rejected_with_typed_errors() {
    let corpus: &[(&str, &str)] = &[
        ("missing-i", ".o 1\n1 a a 0\n.e\n"),
        ("missing-o", ".i 1\n1 a a 0\n.e\n"),
        ("empty", ""),
        ("only-end", ".e\n"),
        ("i-no-arg", ".i\n.o 1\n1 a a 0\n.e\n"),
        ("i-non-numeric", ".i one\n.o 1\n1 a a 0\n.e\n"),
        ("unknown-directive", ".i 1\n.o 1\n.zz 3\n1 a a 0\n.e\n"),
        ("r-no-arg", ".i 1\n.o 1\n.r\n1 a a 0\n.e\n"),
        ("r-unknown-state", ".i 1\n.o 1\n.r ghost\n1 a a 0\n.e\n"),
        ("three-fields", ".i 1\n.o 1\n1 a a\n.e\n"),
        ("five-fields", ".i 1\n.o 1\n1 a a 0 extra\n.e\n"),
        ("garbage-bits", ".i 1\n.o 1\nx a a 0\n.e\n"),
        ("garbage-output", ".i 1\n.o 1\n1 a a 2\n.e\n"),
    ];
    for (label, text) in corpus {
        let e = must_reject(label, text);
        // Every rejection formats without panicking too.
        let _ = e.to_string();
    }
}

#[test]
fn count_mismatches_are_typed() {
    let e = must_reject("p-mismatch", ".i 1\n.o 1\n.p 9\n1 a a 0\n0 a b 1\n.e\n");
    assert!(matches!(
        e,
        ParseKiss2Error::CountMismatch { what: ".p", .. }
    ));

    let e = must_reject("s-mismatch", ".i 1\n.o 1\n.s 7\n1 a a 0\n0 a b 1\n.e\n");
    assert!(matches!(
        e,
        ParseKiss2Error::CountMismatch { what: ".s", .. }
    ));
}

#[test]
fn width_mismatches_are_typed() {
    let e = must_reject("narrow-input", ".i 3\n.o 1\n10 a a 0\n.e\n");
    assert!(matches!(
        e,
        ParseKiss2Error::WidthMismatch {
            field: "input",
            declared: 3,
            found: 2,
            ..
        }
    ));

    let e = must_reject("wide-output", ".i 1\n.o 1\n1 a a 01\n.e\n");
    assert!(matches!(
        e,
        ParseKiss2Error::WidthMismatch {
            field: "output",
            declared: 1,
            found: 2,
            ..
        }
    ));
}

/// Machines that parse but are structurally extreme. The flow may refuse
/// them with a typed `FlowError`, but it must never panic, and whatever
/// report it does produce must be internally consistent.
#[test]
fn degenerate_machines_flow_without_panicking() {
    let corpus: &[(&str, &str)] = &[
        // Duplicate transition rows: same condition listed twice. The
        // parser keeps both; determinism analysis and synthesis must cope.
        (
            "dup-transitions",
            ".i 1\n.o 1\n1 a b 0\n1 a b 0\n0 a a 0\n- b a 1\n.e\n",
        ),
        // Every row fully don't-care on inputs.
        ("dontcare-only", ".i 2\n.o 1\n-- a b 0\n-- b a 1\n.e\n"),
        // Single state, self-loop only.
        ("single-state", ".i 1\n.o 1\n- a a 1\n.e\n"),
        // Zero-input machine (legal KISS2: empty input field is not
        // representable, so a 0-bit field collapses the line to 3 fields —
        // use a 1-input machine that ignores its input instead, plus a
        // genuinely 0-output-ish all-dontcare output).
        ("output-dontcare", ".i 1\n.o 2\n- a a --\n.e\n"),
        // Moore-ish machine where outputs conflict between rows.
        (
            "conflicting-outputs",
            ".i 1\n.o 1\n1 a a 0\n0 a a 1\n1 b a 1\n0 a b 0\n.e\n",
        ),
    ];
    let cfg = quick_cfg();
    for (label, text) in corpus {
        let stg = match kiss2::parse(text, label) {
            Ok(stg) => stg,
            Err(_) => continue, // typed rejection is also acceptable
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            let ff = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg);
            let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg);
            (ff.map(|r| r.area.luts), emb.map(|r| r.area.brams))
        }));
        match outcome {
            Ok((ff, emb)) => {
                // Either side may refuse with a typed error; both errors
                // must format cleanly.
                if let Err(e) = ff {
                    let _ = e.to_string();
                }
                if let Err(e) = emb {
                    let _ = e.to_string();
                }
            }
            Err(_) => panic!("{label}: flow PANICKED on a degenerate machine"),
        }
    }
}

/// KISS2 zero-width declarations: `.i 0` / `.o 0` make transition lines
/// unrepresentable (an empty field drops the line to three tokens), so the
/// parser must reject the file with a typed error rather than panic.
#[test]
fn zero_width_declarations_never_panic() {
    for (label, text) in [
        ("zero-inputs", ".i 0\n.o 1\n a a 0\n.e\n"),
        ("zero-outputs", ".i 1\n.o 0\n1 a a \n.e\n"),
        ("zero-both", ".i 0\n.o 0\n a a \n.e\n"),
    ] {
        let e = must_reject(label, text);
        let _ = e.to_string();
    }
}
