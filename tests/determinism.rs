//! PRNG determinism: every randomized substrate in the workspace must be
//! a pure function of its seed, across calls and across process runs.
//! The in-workspace `xrand` generator (SplitMix64-seeded xoshiro256**)
//! replaced the registry `rand` crate; these tests pin its observable
//! behaviour through each consumer so an accidental algorithm change
//! (which would silently invalidate every recorded experiment seed)
//! fails loudly instead.

use romfsm::emb::stimulus::idle_biased;
use romfsm::fsm::generate::{generate, StgSpec};
use romfsm::fsm::kiss2;
use romfsm::sim::stimulus;

fn spec(seed: u64) -> StgSpec {
    StgSpec {
        states: 12,
        inputs: 3,
        outputs: 2,
        transitions: 40,
        seed,
        ..StgSpec::new("det")
    }
}

#[test]
fn generated_stg_is_identical_for_identical_seeds() {
    let a = generate(&spec(77)).expect("generates");
    let b = generate(&spec(77)).expect("generates");
    assert_eq!(a, b, "same spec must generate the same machine");
    // Textual KISS2 form too: the on-disk artifact is what experiment
    // scripts diff, so it must be byte-identical, not merely Eq.
    assert_eq!(kiss2::write(&a), kiss2::write(&b));
    let c = generate(&spec(78)).expect("generates");
    assert_ne!(a, c, "different seeds must not collide on this spec");
}

#[test]
fn random_stimulus_stream_is_identical_for_identical_seeds() {
    let a = stimulus::random(5, 500, 123);
    let b = stimulus::random(5, 500, 123);
    assert_eq!(a, b);
    assert_ne!(a, stimulus::random(5, 500, 124));
    // Streaming and batch forms must agree: a stream interrupted and
    // resumed sees the same vectors as one drained in a single call.
    let mut s = stimulus::Random::new(5, 123);
    let mut resumed = s.take_vectors(200);
    resumed.extend(s.take_vectors(300));
    assert_eq!(a, resumed);
}

#[test]
fn idle_biased_stimulus_is_identical_for_identical_seeds() {
    let stg = romfsm::fsm::benchmarks::rotary_sequencer();
    let a = idle_biased(&stg, 1000, 0.5, 2004);
    let b = idle_biased(&stg, 1000, 0.5, 2004);
    assert_eq!(a, b);
}

#[test]
fn xrand_stream_matches_recorded_golden_values() {
    // Cross-run anchor: these values were recorded when the generator was
    // introduced. If xrand's seeding or core ever changes, every seed in
    // EXPERIMENTS.md and every named regression seed silently shifts —
    // this test turns that into a visible break.
    let mut rng = xrand::SmallRng::seed_from_u64(2004);
    let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
    assert_eq!(
        got,
        vec![
            10_088_566_014_393_161_487,
            17_255_609_860_929_103_491,
            14_353_370_435_303_667_615,
            9_958_274_634_140_543_437,
        ]
    );
}
