//! Cross-crate equivalence: every implementation of every paper benchmark
//! must be cycle-exact with the STG oracle.
//!
//! This is the workspace's master correctness gate: it exercises the
//! whole stack (STG model → logic synthesis → technology mapping → FSM
//! mapping → netlist → simulator) for all nine benchmarks and all four
//! implementation styles.

use romfsm::emb::baseline::ff_netlist;
use romfsm::emb::clock_control::{attach_emb_clock_control, attach_ff_clock_gating};
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions, OutputMode};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fsm::benchmarks;
use romfsm::logic::synth::{synthesize, SynthOptions};
use romfsm::logic::techmap::MapOptions;

const CYCLES: usize = 400;

#[test]
fn ff_baseline_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let synth = synthesize(&stg, SynthOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = ff_netlist(&synth, false);
        verify_against_stg(&n, &stg, OutputTiming::Combinational, CYCLES, 0xA)
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn emb_mapping_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        verify_against_stg(
            &emb.to_netlist(),
            &stg,
            OutputTiming::Registered,
            CYCLES,
            0xB,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn clock_controlled_emb_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = attach_emb_clock_control(&emb, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        verify_against_stg(&n, &stg, OutputTiming::Registered, CYCLES, 0xC)
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn clock_gated_ff_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let synth = synthesize(&stg, SynthOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = attach_ff_clock_gating(&synth, &stg, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        verify_against_stg(&n, &stg, OutputTiming::Combinational, CYCLES, 0xD)
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn moore_lut_output_variant_matches_oracle() {
    // The Moore-transform path on a few machines of both kinds.
    for name in ["donfile", "dk16"] {
        let stg = benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        verify_against_stg(
            &emb.to_netlist(),
            &stg,
            OutputTiming::Registered,
            CYCLES,
            0xE,
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn handwritten_machines_match_in_every_style() {
    for stg in [
        benchmarks::sequence_detector_0101(),
        benchmarks::traffic_light(),
        benchmarks::rotary_sequencer(),
    ] {
        let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
        let (ff, _) = ff_netlist(&synth, false);
        verify_against_stg(&ff, &stg, OutputTiming::Combinational, CYCLES, 1)
            .unwrap_or_else(|e| panic!("{} ff: {e}", stg.name()));
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("mapping");
        verify_against_stg(&emb.to_netlist(), &stg, OutputTiming::Registered, CYCLES, 2)
            .unwrap_or_else(|e| panic!("{} emb: {e}", stg.name()));
        let (cc, _) = attach_emb_clock_control(&emb, MapOptions::default()).expect("clock control");
        verify_against_stg(&cc, &stg, OutputTiming::Registered, CYCLES, 3)
            .unwrap_or_else(|e| panic!("{} emb+cc: {e}", stg.name()));
    }
}
