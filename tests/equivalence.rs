//! Cross-crate equivalence: every implementation of every paper benchmark
//! must be cycle-exact with the STG oracle.
//!
//! This is the workspace's master correctness gate: it exercises the
//! whole stack (STG model → logic synthesis → technology mapping → FSM
//! mapping → netlist → simulator) for all nine benchmarks and all four
//! implementation styles.

use romfsm::emb::baseline::ff_netlist;
use romfsm::emb::clock_control::{attach_emb_clock_control, attach_ff_clock_gating};
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions, OutputMode};
use romfsm::emb::verify::{
    netlists_equivalent, verify_against_stg, verify_rewrite, OutputTiming, VerificationMethod,
};
use romfsm::fsm::benchmarks;
use romfsm::logic::synth::{synthesize, SynthOptions};
use romfsm::logic::techmap::MapOptions;

const CYCLES: usize = 400;

/// The exhaustive-proof input cap the flows use ([`romfsm::emb::flow::FlowConfig`]).
const MAX_EXHAUSTIVE_INPUTS: usize = 20;

/// Runs the rewrite-verification ladder and asserts it took the exhaustive
/// product-walk path — every paper benchmark is narrow enough (≤ 11
/// inputs), so a sampled fallback here means the ladder regressed.
fn assert_exhaustive(netlist: &romfsm::fpga::netlist::Netlist, stg: &romfsm::fsm::stg::Stg) {
    let method = verify_rewrite(
        netlist,
        stg,
        OutputTiming::Registered,
        MAX_EXHAUSTIVE_INPUTS,
        CYCLES,
        0xB,
    )
    .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    assert!(
        matches!(method, VerificationMethod::Exhaustive(_)),
        "{}: {} inputs must take the exhaustive path, got {method:?}",
        stg.name(),
        stg.num_inputs()
    );
}

#[test]
fn ff_baseline_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let synth = synthesize(&stg, SynthOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = ff_netlist(&synth, false);
        verify_against_stg(&n, &stg, OutputTiming::Combinational, CYCLES, 0xA)
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn emb_mapping_proves_exhaustively_on_all_benchmarks() {
    // Not just "no mismatch in N sampled cycles": the rewrite is *proven*
    // over every reachable (implementation, oracle) product state.
    for stg in benchmarks::paper_suite() {
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        assert_exhaustive(&emb.to_netlist(), &stg);
    }
}

#[test]
fn clock_controlled_emb_proves_exhaustively_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = attach_emb_clock_control(&emb, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        assert_exhaustive(&n, &stg);
    }
}

#[test]
fn compaction_and_series_mappings_are_equivalent() {
    // The column-compaction rewrite (Fig. 4) against the series-bank
    // fallback: same machine, two different BRAM decompositions. Both
    // must prove exhaustively against the oracle AND against each other,
    // for all nine paper benchmarks. The series mapping's bank-select
    // latches multiply the product state space (sand's series walk used
    // to exceed 270s in release on the scalar one-edge-per-clock walker);
    // the 64-lane bit-parallel kernel expands 64 product edges per clock,
    // which brings the whole suite within budget.
    for stg in benchmarks::paper_suite() {
        let name = stg.name().to_owned();
        let name = name.as_str();
        let compacted = map_fsm_into_embs(&stg, &EmbOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .to_netlist();
        let series = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                allow_compaction: false,
                ..EmbOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name} series: {e}"))
        .to_netlist();
        assert_exhaustive(&compacted, &stg);
        assert_exhaustive(&series, &stg);
        let same = netlists_equivalent(&compacted, &series, MAX_EXHAUSTIVE_INPUTS)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(same, "{name}: compacted and series mappings must agree");
    }
}

#[test]
fn clock_gated_ff_matches_oracle_on_all_benchmarks() {
    for stg in benchmarks::paper_suite() {
        let synth = synthesize(&stg, SynthOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let (n, _) = attach_ff_clock_gating(&synth, &stg, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        verify_against_stg(&n, &stg, OutputTiming::Combinational, CYCLES, 0xD)
            .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
    }
}

#[test]
fn moore_lut_output_variant_proves_exhaustively() {
    // The Mealy→Moore transform path: outputs regenerated from state bits
    // by LUTs instead of stored in the memory words. Proven exhaustively
    // against the oracle and against the in-memory variant.
    for name in ["donfile", "dk16"] {
        let stg = benchmarks::by_name(name).expect("paper benchmark");
        let moore = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::MooreLuts,
                ..EmbOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .to_netlist();
        let in_memory = map_fsm_into_embs(
            &stg,
            &EmbOptions {
                output_mode: OutputMode::InMemory,
                ..EmbOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"))
        .to_netlist();
        assert_exhaustive(&moore, &stg);
        assert_exhaustive(&in_memory, &stg);
        let same = netlists_equivalent(&moore, &in_memory, MAX_EXHAUSTIVE_INPUTS)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(same, "{name}: Moore and in-memory variants must agree");
    }
}

#[test]
fn handwritten_machines_match_in_every_style() {
    for stg in [
        benchmarks::sequence_detector_0101(),
        benchmarks::traffic_light(),
        benchmarks::rotary_sequencer(),
    ] {
        let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
        let (ff, _) = ff_netlist(&synth, false);
        verify_against_stg(&ff, &stg, OutputTiming::Combinational, CYCLES, 1)
            .unwrap_or_else(|e| panic!("{} ff: {e}", stg.name()));
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("mapping");
        verify_against_stg(&emb.to_netlist(), &stg, OutputTiming::Registered, CYCLES, 2)
            .unwrap_or_else(|e| panic!("{} emb: {e}", stg.name()));
        let (cc, _) = attach_emb_clock_control(&emb, MapOptions::default()).expect("clock control");
        verify_against_stg(&cc, &stg, OutputTiming::Registered, CYCLES, 3)
            .unwrap_or_else(|e| panic!("{} emb+cc: {e}", stg.name()));
    }
}
