//! Integration tests of the FPGA fabric substrate against FSM-shaped
//! netlists: legality of pack/place/route and consistency of the physical
//! reports the power model consumes.

use romfsm::emb::baseline::ff_netlist;
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::fpga::device::Device;
use romfsm::fpga::pack::pack;
use romfsm::fpga::place::{place, PlaceOptions};
use romfsm::fpga::route::{route, RouteOptions};
use romfsm::fpga::timing::{analyze, DelayModel};
use romfsm::logic::synth::{synthesize, SynthOptions};
use std::collections::HashSet;

#[test]
fn ff_benchmark_netlists_place_and_route_legally() {
    for name in ["keyb", "planet"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
        let (netlist, _) = ff_netlist(&synth, false);
        let packed = pack(&netlist);
        let device = Device::xc2v250();
        let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("places");

        // Site legality and exclusivity per entity class.
        let clb_sites: HashSet<_> = device.clb_sites().into_iter().collect();
        let mut used = HashSet::new();
        for loc in &placement.clb_loc {
            assert!(clb_sites.contains(loc), "{name}: illegal CLB site");
            assert!(used.insert(*loc), "{name}: CLB site reuse");
        }

        let routed = route(&netlist, &packed, &placement, RouteOptions::default())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(routed.total_wirelength > 0);
        assert!(routed.peak_usage <= RouteOptions::default().tile_capacity);

        let timing = analyze(&netlist, &routed, &DelayModel::default());
        assert!(timing.fmax_mhz > 10.0 && timing.fmax_mhz < 1000.0);
    }
}

#[test]
fn emb_netlists_occupy_bram_sites() {
    let stg = romfsm::fsm::benchmarks::by_name("sand").expect("sand");
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let netlist = emb.to_netlist();
    let packed = pack(&netlist);
    assert_eq!(packed.brams.len(), emb.num_brams());
    let device = Device::xc2v250();
    let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("places");
    let bram_sites: HashSet<_> = device.bram_sites().into_iter().collect();
    for loc in &placement.bram_loc {
        assert!(bram_sites.contains(loc), "BRAM placed off-site");
    }
    let routed = route(&netlist, &packed, &placement, RouteOptions::default()).expect("routes");
    // The EMB design's routing demand is tiny compared with the FF one.
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let (ff, _) = ff_netlist(&synth, false);
    let ff_packed = pack(&ff);
    let ff_placement = place(&ff, &ff_packed, device, PlaceOptions::default()).expect("places");
    let ff_routed = route(&ff, &ff_packed, &ff_placement, RouteOptions::default()).expect("routes");
    assert!(
        routed.total_wirelength * 3 < ff_routed.total_wirelength,
        "EMB wirelength {} should be far below FF {}",
        routed.total_wirelength,
        ff_routed.total_wirelength
    );
}

#[test]
fn timing_shows_bram_path_flatness_across_suite() {
    // The EMB machines' critical paths must sit in a narrow band even as
    // FSM complexity varies by an order of magnitude.
    let mut paths = Vec::new();
    for name in ["donfile", "keyb", "planet", "tbk"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let netlist = emb.to_netlist();
        let packed = pack(&netlist);
        let device = Device::xc2v250();
        let placement = place(&netlist, &packed, device, PlaceOptions::default()).expect("places");
        let routed = route(&netlist, &packed, &placement, RouteOptions::default()).expect("routes");
        paths.push(analyze(&netlist, &routed, &DelayModel::default()).critical_path_ns);
    }
    let min = paths.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = paths.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        max / min < 3.0,
        "EMB critical paths should be near-constant, got {paths:?}"
    );
}

#[test]
fn device_upsizing_is_monotone() {
    // The family table must be ordered by capacity so auto-upsizing works.
    let fam = romfsm::fpga::device::FAMILY;
    for w in fam.windows(2) {
        assert!(w[0].num_slices() <= w[1].num_slices());
        assert!(w[0].num_brams() <= w[1].num_brams());
    }
}
