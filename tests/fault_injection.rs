//! Fault-injection campaign: seeded single-fault corruption of STGs and
//! netlists, driven through the library layers. Every case must end in a
//! typed result — `Ok`, a typed error, or a flagged degraded report —
//! and none may panic.
//!
//! The campaign runs well over 500 seeded cases: cheap map/verify checks
//! dominate, with a handful of full flows on top (ISSUE 2 acceptance:
//! ">= 500 seeded injection cases ... zero panics").

use romfsm::emb::faultinject::{corrupt_netlist, corrupt_stg};
use romfsm::emb::flow::{emb_flow, emb_flow_with_fallback, Downgrade, FlowConfig, Stimulus};
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fpga::place::PlaceOptions;
use romfsm::fsm::stg::{StateId, Stg, Transition};
use romfsm::fsm::Pattern;
use romfsm::logic::synth::SynthOptions;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        cycles: 300,
        verify_cycles: 100,
        place: PlaceOptions {
            seed: 1,
            effort: 1.0,
            ..PlaceOptions::default()
        },
        ..FlowConfig::default()
    }
}

/// 300 seeded STG corruptions across three benchmarks: the corrupted
/// machine maps and verifies against the *original* STG. Verification
/// must either pass (fault not observable in the window) or fail with a
/// typed error — never panic.
#[test]
fn stg_corruption_campaign_is_panic_free() {
    let mut cases = 0usize;
    let mut detected = 0usize;
    for name in ["keyb", "donfile", "styr"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        for seed in 0..100u64 {
            let Some((bad, fault)) = corrupt_stg(&stg, seed) else {
                continue;
            };
            cases += 1;
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let emb =
                    map_fsm_into_embs(&bad, &EmbOptions::default()).map_err(|e| e.to_string())?;
                verify_against_stg(&emb.to_netlist(), &stg, OutputTiming::Registered, 200, seed)
                    .map_err(|e| e.to_string())
            }));
            match outcome {
                Ok(Ok(())) => {} // fault not observable in this window
                Ok(Err(_)) => detected += 1,
                Err(_) => panic!("{name}/seed {seed}: PANIC on fault {fault}"),
            }
        }
    }
    assert!(cases >= 290, "campaign ran only {cases} STG cases");
    assert!(
        detected * 2 > cases,
        "verification should catch most single faults ({detected}/{cases})"
    );
}

/// 200 seeded netlist corruptions, run 64 variants at a time on the
/// bit-parallel kernel: a bit flipped in a mapped EMB netlist must be
/// caught by the campaign (or be benign), never a panic — and every
/// batched verdict must agree with the scalar corrupt-then-verify path
/// for the same seed and stimulus.
#[test]
fn netlist_corruption_campaign_is_panic_free() {
    use romfsm::emb::faultinject::netlist_fault_campaign;

    const STIM_SEED: u64 = 0xFA57;
    let mut cases = 0usize;
    let mut detected = 0usize;
    for name in ["keyb", "planet"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let clean = emb.to_netlist();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            netlist_fault_campaign(
                &clean,
                &stg,
                OutputTiming::Registered,
                0..100,
                200,
                STIM_SEED,
            )
        }));
        let outcomes = match outcome {
            Ok(Ok(o)) => o,
            Ok(Err(e)) => panic!("{name}: campaign rejected a clean netlist: {e}"),
            Err(_) => panic!("{name}: PANIC in batched fault campaign"),
        };
        cases += outcomes.len();
        detected += outcomes.iter().filter(|o| o.detected_at.is_some()).count();
        // Differential spot-check: the batched verdict equals the scalar
        // corrupt-then-verify verdict, case for case.
        for out in outcomes.iter().take(16) {
            let (bad, fault) = corrupt_netlist(&clean, out.seed).expect("same seed corrupts");
            assert_eq!(fault, out.fault, "{name}/seed {}", out.seed);
            let scalar = match verify_against_stg(
                &bad,
                &stg,
                OutputTiming::Registered,
                200,
                STIM_SEED,
            ) {
                Ok(()) => None,
                Err(romfsm::emb::verify::VerifyError::Mismatch { cycle, .. }) => Some(cycle),
                Err(e) => panic!("{name}/seed {}: unexpected error {e}", out.seed),
            };
            assert_eq!(
                scalar, out.detected_at,
                "{name}/seed {}: batched and scalar verdicts differ on {fault}",
                out.seed
            );
        }
    }
    assert!(cases >= 190, "campaign ran only {cases} netlist cases");
    // planet's ROM is large, so many single-bit flips land in words the
    // 200-cycle stimulus never addresses; still, a healthy fraction must
    // be observable.
    assert!(
        detected * 4 >= cases,
        "verification should catch a solid fraction of single faults ({detected}/{cases})"
    );
}

/// A few corrupted machines through the *full* flow: the flow returns a
/// typed `FlowError` or a (possibly degraded) `FlowReport`.
#[test]
fn corrupted_machines_flow_without_panicking() {
    let cfg = quick_cfg();
    let stg = romfsm::fsm::benchmarks::by_name("keyb").expect("keyb");
    for seed in 0..10u64 {
        let Some((bad, fault)) = corrupt_stg(&stg, seed) else {
            continue;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            emb_flow(&bad, &EmbOptions::default(), &Stimulus::Random, &cfg)
                .map(|r| r.downgrades.len())
                .map_err(|e| e.to_string())
        }));
        assert!(
            outcome.is_ok(),
            "seed {seed}: flow PANICKED on fault {fault}"
        );
    }
}

/// 100 seeded ECO-placement corruptions across two benchmarks: a moved
/// pinned coordinate or a dropped cone entity must be rejected by
/// `verify_eco_placement` as a typed `EcoPlaceError` — detection is
/// mandatory (the fault classes are observable by construction) and a
/// panic is an instant failure.
#[test]
fn eco_corruption_campaign_is_panic_free() {
    use romfsm::emb::clock_control::attach_emb_clock_control;
    use romfsm::emb::faultinject::corrupt_eco;
    use romfsm::fpga::device::Device;
    use romfsm::fpga::pack::{pack, pack_partitioned};
    use romfsm::fpga::place::{
        place, place_incremental, verify_eco_placement, PinnedEntities,
    };
    use romfsm::logic::techmap::MapOptions;

    let mut cases = 0usize;
    for name in ["keyb", "donfile"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let plain = emb.to_netlist();
        let (gated, _) =
            attach_emb_clock_control(&emb, MapOptions::default()).expect("clock control");
        let device = Device::xc2v250();
        let opts = PlaceOptions {
            seed: 1,
            effort: 1.0,
            ..PlaceOptions::default()
        };
        let plain_packed = pack(&plain);
        let base = place(&plain, &plain_packed, device, opts).expect("base placement");
        let packed = pack_partitioned(&gated, &plain_packed, plain.cells().len())
            .expect("partitioned pack");
        let pins = PinnedEntities::pin_base(&base, &packed);
        let eco = place_incremental(&gated, &packed, device, opts, &pins).expect("eco placement");
        for seed in 0..50u64 {
            let Some((bad, fault)) = corrupt_eco(&eco, &pins, seed) else {
                continue;
            };
            cases += 1;
            let outcome =
                catch_unwind(AssertUnwindSafe(|| verify_eco_placement(&bad.placement, &pins)));
            match outcome {
                Ok(Err(_)) => {} // typed rejection, as the contract demands
                Ok(Ok(())) => panic!("{name}/seed {seed}: fault {fault} went undetected"),
                Err(_) => panic!("{name}/seed {seed}: PANIC checking fault {fault}"),
            }
        }
    }
    assert!(cases >= 100, "campaign ran only {cases} ECO cases");
}

/// Builds a fully-specified machine with `inputs` primary inputs and four
/// states. Fully-specified cubes defeat column compaction, and
/// `inputs + 2` address bits exceed every rung of the ladder when large
/// enough.
fn wide_machine(inputs: usize) -> Stg {
    let states: Vec<String> = (0..4).map(|i| format!("s{i}")).collect();
    let mut transitions = Vec::new();
    // Four fully-specified cubes per state. Determinism needs disjoint
    // conditions (the low two bits encode `k`), and full specification —
    // no don't-cares anywhere — defeats column compaction.
    for s in 0..4usize {
        for k in 0..4usize {
            let bits: Vec<bool> = (0..inputs)
                .map(|b| match b {
                    0 => k & 1 == 1,
                    1 => k >> 1 & 1 == 1,
                    _ => (s + k + b) % 2 == 1,
                })
                .collect();
            transitions.push(Transition {
                from: StateId(s as u32),
                input: Pattern::from_bits(&bits),
                to: StateId(((s + k) % 4) as u32),
                output: Pattern::from_bits(&[(s ^ k) & 1 == 1]),
            });
        }
    }
    Stg::new("wide-nofit", inputs, 1, states, transitions, StateId(0))
        .expect("well-formed wide machine")
}

/// ISSUE 2 acceptance: an FSM that fits no BRAM configuration on the
/// XC2V250 still completes via the FF-baseline fallback, with the
/// downgrade recorded in the report.
#[test]
fn no_fit_machine_completes_via_ff_fallback() {
    // 19 inputs + 2 state bits = 21 address bits: beyond direct (14),
    // compaction (fully-specified cubes) and the series-bank rung.
    let stg = wide_machine(19);
    let cfg = quick_cfg();

    // Without the ladder the EMB flow refuses with a capacity error.
    let direct = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg);
    let err = direct.expect_err("a 21-address-bit machine cannot map to EMBs");
    assert!(err.is_capacity(), "expected a capacity error, got: {err}");

    // With the ladder the flow completes as an FF implementation and
    // records the downgrade.
    let report = emb_flow_with_fallback(
        &stg,
        &EmbOptions::default(),
        SynthOptions::default(),
        &Stimulus::Random,
        &cfg,
    )
    .expect("fallback flow must complete");
    assert!(
        report
            .downgrades
            .iter()
            .any(|d| matches!(d, Downgrade::EmbToFf { .. })),
        "downgrade must be recorded, got: {:?}",
        report.downgrades
    );
    assert!(report.area.ffs > 0, "FF baseline actually used flip-flops");
}
