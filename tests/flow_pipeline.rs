//! End-to-end pipeline properties: the paper's qualitative claims, stated
//! as assertions over the full flows.

use romfsm::emb::flow::{emb_clock_controlled_flow, emb_flow, ff_flow, FlowConfig, Stimulus};
use romfsm::emb::map::EmbOptions;
use romfsm::fpga::place::PlaceOptions;
use romfsm::logic::synth::SynthOptions;

fn quick_cfg() -> FlowConfig {
    FlowConfig {
        cycles: 800,
        verify_cycles: 200,
        place: PlaceOptions {
            seed: 1,
            effort: 3.0,
            ..PlaceOptions::default()
        },
        ..FlowConfig::default()
    }
}

#[test]
fn emb_beats_ff_on_power_for_every_benchmark() {
    // The paper's headline claim (Table 2): the EMB implementation
    // consumes less power than the FF implementation.
    let cfg = quick_cfg();
    for name in ["prep4", "donfile", "keyb", "planet"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let ff = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let pf = ff.power_at(100.0).expect("100MHz").total_mw();
        let pe = emb.power_at(100.0).expect("100MHz").total_mw();
        assert!(pe < pf, "{name}: EMB {pe:.2} mW must beat FF {pf:.2} mW");
    }
}

#[test]
fn emb_uses_almost_no_logic_resources() {
    // Table 1's claim: EMB implementations need no FFs and only mux LUTs.
    let cfg = quick_cfg();
    for name in ["donfile", "keyb"] {
        let stg = romfsm::fsm::benchmarks::by_name(name).expect("paper benchmark");
        let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let ff = ff_flow(&stg, SynthOptions::default(), &Stimulus::Random, &cfg)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(emb.area.ffs, 0, "{name}: EMB uses no flip-flops");
        assert_eq!(emb.area.brams, 1, "{name}: one BRAM");
        assert!(
            emb.area.luts * 5 < ff.area.luts,
            "{name}: EMB LUTs ({}) must be a small fraction of FF LUTs ({})",
            emb.area.luts,
            ff.area.luts
        );
    }
}

#[test]
fn clock_control_saving_grows_with_idle_time() {
    // Sec. 6 / Table 3: savings are proportional to idle occupancy.
    let cfg = quick_cfg();
    let stg = romfsm::fsm::benchmarks::by_name("keyb").expect("keyb");
    let mut savings = Vec::new();
    for idle in [0.2, 0.9] {
        let stim = Stimulus::IdleBiased(idle);
        let plain = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).expect("emb");
        let gated =
            emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg).expect("cc");
        let p0 = plain.power_at(100.0).expect("100MHz").dynamic_mw();
        let p1 = gated.power_at(100.0).expect("100MHz").dynamic_mw();
        savings.push(p0 - p1);
    }
    assert!(
        savings[1] > savings[0],
        "saving at 90% idle ({:.2} mW) must exceed saving at 20% ({:.2} mW)",
        savings[1],
        savings[0]
    );
}

#[test]
fn power_is_linear_in_frequency() {
    let cfg = FlowConfig {
        freqs_mhz: vec![50.0, 100.0, 200.0],
        ..quick_cfg()
    };
    let stg = romfsm::fsm::benchmarks::by_name("donfile").expect("donfile");
    let emb = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &cfg).expect("emb");
    let d50 = emb.power_at(50.0).expect("50").dynamic_mw();
    let d100 = emb.power_at(100.0).expect("100").dynamic_mw();
    let d200 = emb.power_at(200.0).expect("200").dynamic_mw();
    assert!((d100 / d50 - 2.0).abs() < 1e-6);
    assert!((d200 / d100 - 2.0).abs() < 1e-6);
}

#[test]
fn emb_fmax_is_high_and_complexity_insensitive() {
    // Sec. 4.2: the EMB FSM "can be clocked at the maximum clock frequency
    // supported by the memory arrays" and its timing does not depend on
    // the machine's complexity.
    let cfg = quick_cfg();
    let small = romfsm::fsm::benchmarks::by_name("donfile").expect("donfile");
    let big = romfsm::fsm::benchmarks::by_name("tbk").expect("tbk");
    let e_small = emb_flow(&small, &EmbOptions::default(), &Stimulus::Random, &cfg).expect("emb");
    let e_big = emb_flow(&big, &EmbOptions::default(), &Stimulus::Random, &cfg).expect("emb");
    let f_big = ff_flow(&big, SynthOptions::default(), &Stimulus::Random, &cfg).expect("ff");
    assert!(
        e_big.timing.fmax_mhz > 2.0 * f_big.timing.fmax_mhz,
        "tbk: EMB fmax {:.1} should dwarf FF fmax {:.1}",
        e_big.timing.fmax_mhz,
        f_big.timing.fmax_mhz
    );
    let ratio = e_small.timing.critical_path_ns / e_big.timing.critical_path_ns;
    assert!(
        (0.4..2.5).contains(&ratio),
        "EMB paths should be comparable: {ratio:.2}"
    );
}

#[test]
fn clock_control_logic_slows_the_clock() {
    // Sec. 6: "the clock frequency of the design will be slower
    // proportional to the delay introduced by the clock control logic"
    // (the enable sits in the BRAM's setup path).
    //
    // ECO placement makes this comparison structural instead of
    // statistical: the gated flow pins every shared entity at EXACTLY the
    // plain design's coordinates and places only the enable cone, so the
    // fmax difference is attributable to the clock-control logic alone —
    // no placement-noise band needed.
    let cfg = quick_cfg();
    let stg = romfsm::fsm::benchmarks::by_name("keyb").expect("keyb");
    let stim = Stimulus::IdleBiased(0.5);
    let plain = emb_flow(&stg, &EmbOptions::default(), &stim, &cfg).expect("emb");
    let gated = emb_clock_controlled_flow(&stg, &EmbOptions::default(), &stim, &cfg).expect("cc");
    let control = gated.clock_control.expect("clock-control stats");
    assert!(control.luts >= 1, "enable cone must exist in the netlist");
    let eco = gated
        .eco
        .as_ref()
        .expect("the gated flow must take the ECO placement path");
    assert_eq!(
        eco.base_coord_digest, plain.coord_digest,
        "every base entity must sit at exactly the plain design's coordinates"
    );
    assert!(eco.pinned_entities > 0, "base entities are pinned");
    assert!(eco.delta_entities > 0, "the enable cone is placed as a delta");
    assert!(
        gated.timing.fmax_mhz <= plain.timing.fmax_mhz,
        "with the base placement pinned, enable logic can only slow the clock: {:.3} vs {:.3}",
        gated.timing.fmax_mhz,
        plain.timing.fmax_mhz
    );
}
