//! Verifier-sensitivity (mutation) tests: randomly corrupt implementation
//! artifacts and check that the lockstep/exhaustive verifiers actually
//! catch the corruption. A verifier that passes everything is worthless;
//! these tests measure its teeth.

use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, verify_exhaustive, OutputTiming};
use romfsm::fpga::netlist::{Cell, Netlist};
use romfsm::fsm::benchmarks::sequence_detector_0101;
use xrand::SmallRng;

/// Rebuilds `netlist` with truth-table bit `bit` of the LUT at cell
/// index `target` flipped (cells/nets keep ids because insertion order
/// is identical).
fn flip_lut_bit(netlist: &Netlist, target: usize, bit: u64) -> Netlist {
    let mut out = Netlist::new(netlist.name.clone());
    for _ in 0..netlist.num_nets() {
        out.add_net("n");
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        let mut cell = cell.clone();
        if i == target {
            if let Cell::Lut { truth, .. } = &mut cell {
                *truth ^= 1 << bit;
            }
        }
        out.add_cell(cell);
    }
    for (name, net) in netlist.inputs() {
        out.add_input(name.clone(), *net);
    }
    for (name, net) in netlist.outputs() {
        out.add_output(name.clone(), *net);
    }
    out
}

/// Flip one random LUT truth-table bit (only in LUTs that exist).
fn mutate_lut(netlist: &Netlist, rng: &mut SmallRng) -> Option<Netlist> {
    let luts: Vec<usize> = netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c, Cell::Lut { .. }))
        .map(|(i, _)| i)
        .collect();
    if luts.is_empty() {
        return None;
    }
    let target = luts[rng.random_range(0..luts.len())];
    let mut out = Netlist::new(netlist.name.clone());
    // Rebuild the netlist with the mutated cell (cells/nets keep ids
    // because insertion order is identical).
    for _ in 0..netlist.num_nets() {
        out.add_net("n");
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        let mut cell = cell.clone();
        if i == target {
            if let Cell::Lut { inputs, truth, .. } = &mut cell {
                let bit = rng.random_range(0..1u64 << inputs.len().max(1));
                *truth ^= 1 << bit;
            }
        }
        out.add_cell(cell);
    }
    for (name, net) in netlist.inputs() {
        out.add_input(name.clone(), *net);
    }
    for (name, net) in netlist.outputs() {
        out.add_output(name.clone(), *net);
    }
    Some(out)
}

#[test]
fn exhaustive_verifier_catches_every_rom_bit_flip() {
    // For the 0101 detector every used ROM bit is behaviourally relevant;
    // flipping ANY of them must be caught by the exhaustive check.
    let stg = sequence_detector_0101();
    let base = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let used_words = 8usize; // 2^(1 input + 2 state bits)
    let mut caught = 0usize;
    let mut total = 0usize;
    for word in 0..used_words {
        for bit in 0..3 {
            let mut emb = base.clone();
            emb.rom[word] ^= 1 << bit;
            total += 1;
            if verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 4).is_err() {
                caught += 1;
            }
        }
    }
    assert_eq!(
        caught, total,
        "exhaustive verification must catch all {total} single-bit ROM mutations"
    );
}

#[test]
fn random_verifier_catches_most_rom_mutations() {
    // The sampling verifier should catch the overwhelming majority with a
    // modest budget (it cannot promise all: some mutations need rare
    // prefixes).
    let stg = sequence_detector_0101();
    let base = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let mut caught = 0usize;
    let mut total = 0usize;
    for word in 0..8usize {
        for bit in 0..3 {
            let mut emb = base.clone();
            emb.rom[word] ^= 1 << bit;
            total += 1;
            if verify_against_stg(&emb.to_netlist(), &stg, OutputTiming::Registered, 2000, 7)
                .is_err()
            {
                caught += 1;
            }
        }
    }
    assert!(
        caught * 10 >= total * 9,
        "random verification caught only {caught}/{total} ROM mutations"
    );
}

#[test]
fn lut_mutations_in_ff_baseline_are_caught() {
    use romfsm::emb::baseline::ff_netlist;
    use romfsm::logic::synth::{synthesize, SynthOptions};

    let stg = sequence_detector_0101();
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let (netlist, _) = ff_netlist(&synth, false);
    let mut rng = SmallRng::seed_from_u64(99);
    let mut caught = 0usize;
    let mut total = 0usize;
    for _ in 0..30 {
        let Some(mutant) = mutate_lut(&netlist, &mut rng) else {
            break;
        };
        total += 1;
        if verify_exhaustive(&mutant, &stg, OutputTiming::Combinational, 4).is_err() {
            caught += 1;
        }
    }
    // Some LUT bits are genuine don't-cares (unreachable state codes), so
    // 100% is not expected; the verifier must still catch most.
    assert!(
        caught * 10 >= total * 6,
        "exhaustive verification caught only {caught}/{total} LUT mutations"
    );
}

#[test]
fn enable_logic_mutations_are_caught_exactly() {
    use romfsm::emb::clock_control::attach_emb_clock_control;
    use romfsm::emb::verify::netlists_equivalent;
    use romfsm::logic::techmap::MapOptions;

    // Corrupting the clock-control logic makes the BRAM idle at the wrong
    // time (or fail to idle). Not every flip is observable: enabling the
    // BRAM during an idle self-loop re-reads the same word (only power
    // changes), and the enable cone contains unreachable (state, output-
    // latch) combinations — genuine don't-cares of the minimizer. So
    // instead of a sampled catch-rate threshold, enumerate EVERY
    // single-bit LUT mutation, decide observability with an independent
    // netlist-product walk, and require the verifier to be exact: it
    // must flag every observable mutant and pass every unobservable one.
    //
    // (History: the first-ever run of this suite failed the old
    // sampled form of this test — 6/20 caught vs a ≥10 threshold. The
    // ground-truth walk showed the verifier catching exactly the 10/26
    // observable mutations; the threshold, never executed before, was
    // miscalibrated for this machine's 62% don't-care enable cone.)
    let stg = romfsm::fsm::benchmarks::rotary_sequencer();
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let (netlist, _) =
        attach_emb_clock_control(&emb, MapOptions::default()).expect("clock control");

    let mut observable = 0usize;
    let mut total = 0usize;
    for (i, cell) in netlist.cells().iter().enumerate() {
        let Cell::Lut { inputs, .. } = cell else {
            continue;
        };
        for bit in 0..1u64 << inputs.len().max(1) {
            let mutant = flip_lut_bit(&netlist, i, bit);
            total += 1;
            let is_observable =
                !netlists_equivalent(&netlist, &mutant, 4).expect("product walk runs");
            let caught = verify_exhaustive(&mutant, &stg, OutputTiming::Registered, 4).is_err();
            assert_eq!(
                caught,
                is_observable,
                "cell {i} bit {bit}: verifier {} an {} mutation",
                if caught { "flagged" } else { "missed" },
                if is_observable {
                    "observable"
                } else {
                    "unobservable"
                },
            );
            observable += usize::from(is_observable);
        }
    }
    // Teeth: a meaningful share of the mutation space must actually be
    // observable, or the assertion above proves nothing.
    assert!(
        observable * 4 >= total && observable >= 5,
        "only {observable}/{total} enable-logic mutations are observable"
    );
}
