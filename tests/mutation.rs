//! Verifier-sensitivity (mutation) tests: randomly corrupt implementation
//! artifacts and check that the lockstep/exhaustive verifiers actually
//! catch the corruption. A verifier that passes everything is worthless;
//! these tests measure its teeth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, verify_exhaustive, OutputTiming};
use romfsm::fpga::netlist::{Cell, Netlist};
use romfsm::fsm::benchmarks::sequence_detector_0101;

/// Flip one random LUT truth-table bit (only in LUTs that exist).
fn mutate_lut(netlist: &Netlist, rng: &mut SmallRng) -> Option<Netlist> {
    let luts: Vec<usize> = netlist
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c, Cell::Lut { .. }))
        .map(|(i, _)| i)
        .collect();
    if luts.is_empty() {
        return None;
    }
    let target = luts[rng.random_range(0..luts.len())];
    let mut out = Netlist::new(netlist.name.clone());
    // Rebuild the netlist with the mutated cell (cells/nets keep ids
    // because insertion order is identical).
    for _ in 0..netlist.num_nets() {
        out.add_net("n");
    }
    for (i, cell) in netlist.cells().iter().enumerate() {
        let mut cell = cell.clone();
        if i == target {
            if let Cell::Lut { inputs, truth, .. } = &mut cell {
                let bit = rng.random_range(0..1u64 << inputs.len().max(1));
                *truth ^= 1 << bit;
            }
        }
        out.add_cell(cell);
    }
    for (name, net) in netlist.inputs() {
        out.add_input(name.clone(), *net);
    }
    for (name, net) in netlist.outputs() {
        out.add_output(name.clone(), *net);
    }
    Some(out)
}

#[test]
fn exhaustive_verifier_catches_every_rom_bit_flip() {
    // For the 0101 detector every used ROM bit is behaviourally relevant;
    // flipping ANY of them must be caught by the exhaustive check.
    let stg = sequence_detector_0101();
    let base = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let used_words = 8usize; // 2^(1 input + 2 state bits)
    let mut caught = 0usize;
    let mut total = 0usize;
    for word in 0..used_words {
        for bit in 0..3 {
            let mut emb = base.clone();
            emb.rom[word] ^= 1 << bit;
            total += 1;
            if verify_exhaustive(&emb.to_netlist(), &stg, OutputTiming::Registered, 4).is_err() {
                caught += 1;
            }
        }
    }
    assert_eq!(
        caught, total,
        "exhaustive verification must catch all {total} single-bit ROM mutations"
    );
}

#[test]
fn random_verifier_catches_most_rom_mutations() {
    // The sampling verifier should catch the overwhelming majority with a
    // modest budget (it cannot promise all: some mutations need rare
    // prefixes).
    let stg = sequence_detector_0101();
    let base = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let mut caught = 0usize;
    let mut total = 0usize;
    for word in 0..8usize {
        for bit in 0..3 {
            let mut emb = base.clone();
            emb.rom[word] ^= 1 << bit;
            total += 1;
            if verify_against_stg(&emb.to_netlist(), &stg, OutputTiming::Registered, 2000, 7)
                .is_err()
            {
                caught += 1;
            }
        }
    }
    assert!(
        caught * 10 >= total * 9,
        "random verification caught only {caught}/{total} ROM mutations"
    );
}

#[test]
fn lut_mutations_in_ff_baseline_are_caught() {
    use romfsm::emb::baseline::ff_netlist;
    use romfsm::logic::synth::{synthesize, SynthOptions};

    let stg = sequence_detector_0101();
    let synth = synthesize(&stg, SynthOptions::default()).expect("synthesis");
    let (netlist, _) = ff_netlist(&synth, false);
    let mut rng = SmallRng::seed_from_u64(99);
    let mut caught = 0usize;
    let mut total = 0usize;
    for _ in 0..30 {
        let Some(mutant) = mutate_lut(&netlist, &mut rng) else {
            break;
        };
        total += 1;
        if verify_exhaustive(&mutant, &stg, OutputTiming::Combinational, 4).is_err() {
            caught += 1;
        }
    }
    // Some LUT bits are genuine don't-cares (unreachable state codes), so
    // 100% is not expected; the verifier must still catch most.
    assert!(
        caught * 10 >= total * 6,
        "exhaustive verification caught only {caught}/{total} LUT mutations"
    );
}

#[test]
fn enable_logic_mutations_are_caught() {
    use romfsm::emb::clock_control::attach_emb_clock_control;
    use romfsm::logic::techmap::MapOptions;

    // Corrupting the clock-control logic makes the BRAM idle at the wrong
    // time (or fail to idle) — the lockstep check must see it.
    let stg = romfsm::fsm::benchmarks::rotary_sequencer();
    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let (netlist, _) =
        attach_emb_clock_control(&emb, MapOptions::default()).expect("clock control");
    let mut rng = SmallRng::seed_from_u64(1234);
    let mut caught = 0usize;
    let mut total = 0usize;
    for _ in 0..20 {
        let Some(mutant) = mutate_lut(&netlist, &mut rng) else {
            break;
        };
        total += 1;
        if verify_exhaustive(&mutant, &stg, OutputTiming::Registered, 4).is_err() {
            caught += 1;
        }
    }
    assert!(
        caught * 2 >= total,
        "verification caught only {caught}/{total} enable-logic mutations"
    );
}
