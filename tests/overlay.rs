//! Overlay-backend equivalence and capacity properties across the
//! synthetic corpus tiers.
//!
//! The overlay backend compiles an FSM by re-encoding its STG into the
//! memory contents of a pre-built class base — so its correctness story
//! is exactly the direct backend's: the overlay netlist must survive
//! the [`verify_rewrite`] exhaustive/sampled ladder against the STG
//! oracle. One generated machine per corpus tier goes through that
//! proof here; machines past the capacity ladder must be rejected with
//! a *typed* error (never a panic), and the `auto` backend must degrade
//! them to the direct flow with a recorded `overlay-capacity`
//! downgrade.

use romfsm::emb::flow::{emb_flow, emb_overlay_flow, FlowConfig, MapBackend, Stimulus};
use romfsm::emb::map::EmbOptions;
use romfsm::emb::overlay::{overlay_fsm, OverlayError};
use romfsm::emb::verify::{verify_rewrite, OutputTiming};

/// The committed corpus seed (`CORPUS_SEED` of `corpus_stress`).
const SEED: u64 = 2004;

/// Exhaustive-proof input cap: narrow tiers take the product walk, the
/// 10-input series-cascade tier falls back to dense sampling — both are
/// accepted proofs; a verification *failure* fails the test.
const MAX_EXHAUSTIVE_INPUTS: usize = 8;
const CYCLES: usize = 300;

fn scratch_cache(tag: &str) {
    let dir = std::env::temp_dir().join(format!("overlay_test_{tag}_{}", std::process::id()));
    let _ = std::fs::create_dir_all(&dir);
    std::env::set_var("FLOW_CACHE_DIR", &dir);
}

fn tier_machine(tier: &str) -> romfsm::fsm::stg::Stg {
    let spec = romfsm::fsm::corpus::spec(tier, 0, SEED).expect("known tier");
    romfsm::fsm::generate::generate(&spec).expect("corpus spec generates")
}

/// Every corpus tier's representative either fits the overlay ladder —
/// in which case its overlay netlist must be provably equivalent to the
/// STG — or is rejected with the typed capacity error. No third way.
#[test]
fn overlay_netlist_matches_stg_on_every_fitting_tier() {
    let mut fitting = 0usize;
    let mut rejected = 0usize;
    for tier in romfsm::fsm::corpus::tier_names() {
        let stg = tier_machine(tier);
        match overlay_fsm(&stg) {
            Ok(ovl) => {
                let netlist = ovl.fsm_netlist();
                let method = verify_rewrite(
                    &netlist,
                    &stg,
                    OutputTiming::Registered,
                    MAX_EXHAUSTIVE_INPUTS,
                    CYCLES,
                    0xC,
                )
                .unwrap_or_else(|e| panic!("{tier}: overlay netlist diverges from STG: {e}"));
                fitting += 1;
                eprintln!("{tier}: overlay class {} proven via {method:?}", ovl.class.label());
            }
            Err(OverlayError::CapacityExceeded {
                needed_addr_bits,
                available,
            }) => {
                assert!(
                    needed_addr_bits > available,
                    "{tier}: capacity rejection must over-demand the ladder \
                     (needed {needed_addr_bits}, available {available})"
                );
                rejected += 1;
            }
            Err(e) => panic!("{tier}: unexpected overlay rejection: {e}"),
        }
    }
    assert!(
        fitting >= 4,
        "the corpus must keep several overlay-fit tiers (saw {fitting})"
    );
    assert!(
        rejected >= 1,
        "the corpus must keep at least one over-capacity tier (saw {rejected})"
    );
}

/// Past the capacity ladder the overlay flow returns a typed capacity
/// error, and the `auto` backend completes on the direct rung with the
/// `overlay-capacity` downgrade recorded.
#[test]
fn over_capacity_machines_take_the_typed_reject_path() {
    scratch_cache("capacity");
    let stg = tier_machine("wide-input");
    let cfg = FlowConfig {
        exhaustive_verify_max_inputs: 6,
        cycles: 300,
        verify_cycles: 200,
        ..FlowConfig::default()
    };

    let err = emb_overlay_flow(&stg, &Stimulus::Random, &cfg)
        .expect_err("a 14-input machine cannot fit a 16-line overlay base");
    assert!(
        err.is_capacity(),
        "overlay rejection must be a typed capacity error, got: {err}"
    );

    let auto_cfg = FlowConfig {
        backend: MapBackend::Auto,
        ..cfg
    };
    let report = emb_flow(&stg, &EmbOptions::default(), &Stimulus::Random, &auto_cfg)
        .expect("auto backend must degrade to the direct flow");
    assert!(
        report
            .downgrades
            .iter()
            .any(|d| d.kind() == "overlay-capacity"),
        "auto fallback must record the overlay-capacity downgrade, got {:?}",
        report.downgrades
    );
    assert!(
        report.overlay.is_none(),
        "a direct-rung report must not carry overlay evidence"
    );
}

/// A second compile of the same class reuses the stored base artifact:
/// the report says so, and the placement is coordinate-identical.
#[test]
fn recompiling_a_class_reuses_the_stored_base() {
    scratch_cache("reuse");
    let stg = tier_machine("nominal");
    let cfg = FlowConfig {
        exhaustive_verify_max_inputs: 6,
        cycles: 300,
        verify_cycles: 200,
        ..FlowConfig::default()
    };
    let first = emb_overlay_flow(&stg, &Stimulus::Random, &cfg).expect("overlay flow");
    let second = emb_overlay_flow(&stg, &Stimulus::Random, &cfg).expect("overlay flow again");
    let ovl = second.overlay.as_ref().expect("overlay evidence");
    assert!(ovl.base_cache_hit, "second compile must hit the base cache");
    assert_eq!(
        first.coord_digest, second.coord_digest,
        "base reuse must reproduce the placement exactly"
    );
}
