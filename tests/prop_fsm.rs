//! Property-based tests over randomly generated machines: every
//! transformation in the workspace must preserve the machine's observable
//! behaviour (or its own documented invariants).

use proptest::prelude::*;
use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, OutputTiming};
use romfsm::fsm::generate::{generate, StgSpec};
use romfsm::fsm::simulate::StgSimulator;
use romfsm::fsm::{kiss2, machine, minimize, Stg};

/// Strategy: a small random-but-valid machine spec.
fn spec_strategy() -> impl Strategy<Value = StgSpec> {
    (
        2usize..10,  // states
        1usize..5,   // inputs
        1usize..5,   // outputs
        4usize..32,  // transitions
        any::<bool>(),
        any::<bool>(),
        any::<u64>(),
    )
        .prop_map(|(states, inputs, outputs, transitions, moore, idle, seed)| StgSpec {
            name: format!("p{seed:x}"),
            states,
            inputs,
            outputs,
            transitions,
            max_support: None,
            self_loop_bias: 0.3,
            moore,
            idle_line: if idle { Some(0) } else { None },
            seed,
        })
}

fn random_walk_equiv(a: &Stg, b: &Stg, cycles: usize, seed: u64) -> Result<(), String> {
    let mut sa = StgSimulator::new(a);
    let mut sb = StgSimulator::new(b);
    let mut x = seed | 1;
    for cycle in 0..cycles {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let inputs: Vec<bool> = (0..a.num_inputs()).map(|i| x >> i & 1 == 1).collect();
        let oa = sa.clock(&inputs).to_vec();
        let ob = sb.clock(&inputs).to_vec();
        if oa != ob {
            return Err(format!("diverged at cycle {cycle}: {oa:?} vs {ob:?}"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    #[test]
    fn generated_machines_are_deterministic(spec in spec_strategy()) {
        let stg = generate(&spec);
        prop_assert!(stg.is_deterministic());
        prop_assert_eq!(stg.num_states(), spec.states);
    }

    #[test]
    fn kiss2_roundtrip_preserves_machine(spec in spec_strategy()) {
        // State ids may be renumbered by first appearance in the body, so
        // compare structure-insensitively: same interface, same state-name
        // set, same observable behaviour.
        let stg = generate(&spec);
        let text = kiss2::write(&stg);
        let again = kiss2::parse(&text, stg.name()).expect("roundtrip parses");
        prop_assert_eq!(stg.num_states(), again.num_states());
        prop_assert_eq!(stg.transitions().len(), again.transitions().len());
        let mut names_a: Vec<&str> = stg.states().map(|s| stg.state_name(s)).collect();
        let mut names_b: Vec<&str> = again.states().map(|s| again.state_name(s)).collect();
        names_a.sort_unstable();
        names_b.sort_unstable();
        prop_assert_eq!(names_a, names_b);
        random_walk_equiv(&stg, &again, 200, spec.seed ^ 2).map_err(|e| {
            TestCaseError::fail(format!("{}: {e}", stg.name()))
        })?;
    }

    #[test]
    fn minimization_preserves_behaviour(spec in spec_strategy()) {
        let stg = generate(&spec);
        let min = minimize::minimize(&stg).expect("minimizes");
        prop_assert!(min.stg.num_states() <= stg.num_states());
        random_walk_equiv(&stg, &min.stg, 200, spec.seed).map_err(|e| {
            TestCaseError::fail(format!("{}: {e}", stg.name()))
        })?;
    }

    #[test]
    fn moore_transform_preserves_behaviour(spec in spec_strategy()) {
        let stg = generate(&spec);
        let moore = machine::to_moore(&stg).expect("transforms");
        prop_assert_eq!(machine::classify(&moore), machine::FsmKind::Moore);
        random_walk_equiv(&stg, &moore, 200, spec.seed ^ 1).map_err(|e| {
            TestCaseError::fail(format!("{}: {e}", stg.name()))
        })?;
    }

    #[test]
    fn emb_mapping_is_cycle_exact(spec in spec_strategy()) {
        let stg = generate(&spec);
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let netlist = emb.to_netlist();
        let r = verify_against_stg(&netlist, &stg, OutputTiming::Registered, 200, spec.seed);
        prop_assert!(r.is_ok(), "{}: {:?}", stg.name(), r.err());
    }

    #[test]
    fn eco_identity_rewrite_changes_nothing(spec in spec_strategy()) {
        let stg = generate(&spec);
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let eco = romfsm::emb::eco::rewrite(&emb, &stg).expect("identity rewrite");
        prop_assert_eq!(eco.words_changed, 0);
    }
}
