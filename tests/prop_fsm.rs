//! Property-based tests over randomly generated machines: every
//! transformation in the workspace must preserve the machine's observable
//! behaviour (or its own documented invariants).
//!
//! Runs on the in-workspace `xrand::proptest_lite` harness (hermetic, no
//! registry deps). Failures print the case seed; re-run one case with
//! `SEED=<seed> cargo test --test prop_fsm`.

use romfsm::emb::map::{map_fsm_into_embs, EmbOptions};
use romfsm::emb::verify::{verify_against_stg, verify_rewrite, OutputTiming};
use romfsm::fsm::generate::{generate, GenerateError, StgSpec};
use romfsm::fsm::simulate::StgSimulator;
use romfsm::fsm::{kiss2, machine, minimize, Stg};
use xrand::proptest_lite::{run_cases, run_sized_cases};
use xrand::SmallRng;

/// A small random-but-valid machine spec.
fn arb_spec(rng: &mut SmallRng) -> StgSpec {
    let states = rng.random_range(2usize..10);
    let inputs = rng.random_range(1usize..5);
    let outputs = rng.random_range(1usize..5);
    let transitions = rng.random_range(4usize..32);
    let moore: bool = rng.random();
    let idle: bool = rng.random();
    let seed: u64 = rng.random();
    // Shape knobs engage on a quarter of cases each, so the suite keeps
    // exercising the historical dense/flat shape alongside the new ones.
    let dont_care_density = if rng.random_bool(0.25) {
        rng.random::<f64>()
    } else {
        0.0
    };
    let fanout_skew = if rng.random_bool(0.25) {
        rng.random::<f64>() * 2.0
    } else {
        0.0
    };
    StgSpec {
        name: format!("p{seed:x}"),
        states,
        inputs,
        outputs,
        transitions,
        max_support: None,
        self_loop_bias: 0.3,
        moore,
        idle_line: if idle { Some(0) } else { None },
        dont_care_density,
        fanout_skew,
        seed,
    }
}

/// Like [`arb_spec`] but with complexity bounded by `size`: at most
/// `size + 1` states and `4 * size` transitions. Used with
/// `run_sized_cases` so failing cases shrink toward small machines.
fn arb_spec_sized(rng: &mut SmallRng, size: u32) -> StgSpec {
    let size = size as usize;
    let states = rng.random_range(2usize..(size + 2).max(3));
    let inputs = rng.random_range(1usize..5);
    let outputs = rng.random_range(1usize..5);
    let transitions = rng.random_range(4usize..(4 * size + 5).max(6));
    let moore: bool = rng.random();
    let idle: bool = rng.random();
    let seed: u64 = rng.random();
    StgSpec {
        name: format!("ps{seed:x}"),
        states,
        inputs,
        outputs,
        transitions,
        max_support: None,
        self_loop_bias: 0.3,
        moore,
        idle_line: if idle { Some(0) } else { None },
        dont_care_density: 0.0,
        fanout_skew: 0.0,
        seed,
    }
}

fn random_walk_equiv(a: &Stg, b: &Stg, cycles: usize, seed: u64) -> Result<(), String> {
    let mut sa = StgSimulator::new(a);
    let mut sb = StgSimulator::new(b);
    let mut x = seed | 1;
    for cycle in 0..cycles {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let inputs: Vec<bool> = (0..a.num_inputs()).map(|i| x >> i & 1 == 1).collect();
        let oa = sa.clock(&inputs).to_vec();
        let ob = sb.clock(&inputs).to_vec();
        if oa != ob {
            return Err(format!("diverged at cycle {cycle}: {oa:?} vs {ob:?}"));
        }
    }
    Ok(())
}

#[test]
fn generated_machines_are_deterministic() {
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        assert!(stg.is_deterministic(), "{spec:?}");
        assert_eq!(stg.num_states(), spec.states, "{spec:?}");
    });
}

#[test]
fn kiss2_roundtrip_preserves_machine() {
    run_cases(24, |rng| {
        // State ids may be renumbered by first appearance in the body, so
        // compare structure-insensitively: same interface, same state-name
        // set, same observable behaviour.
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        let text = kiss2::write(&stg);
        let again = kiss2::parse(&text, stg.name()).expect("roundtrip parses");
        assert_eq!(stg.num_states(), again.num_states(), "{spec:?}");
        assert_eq!(
            stg.transitions().len(),
            again.transitions().len(),
            "{spec:?}"
        );
        let mut names_a: Vec<&str> = stg.states().map(|s| stg.state_name(s)).collect();
        let mut names_b: Vec<&str> = again.states().map(|s| again.state_name(s)).collect();
        names_a.sort_unstable();
        names_b.sort_unstable();
        assert_eq!(names_a, names_b, "{spec:?}");
        if let Err(e) = random_walk_equiv(&stg, &again, 200, spec.seed ^ 2) {
            panic!("{}: {e} ({spec:?})", stg.name());
        }
    });
}

#[test]
fn kiss2_roundtrip_is_equivalent_via_verify_ladder() {
    // Stronger than the structural/random-walk check above: the parsed
    // machine is mapped into EMBs and its netlist proven against the
    // *original* STG through the `verify_rewrite` exhaustive/sampled
    // ladder, so the round trip is certified by the same oracle the flow
    // uses. Small arb specs have ≤ 4 inputs, so every case here takes the
    // exhaustive rung.
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        let text = kiss2::write(&stg);
        let again = kiss2::parse(&text, stg.name()).expect("roundtrip parses");
        let emb = map_fsm_into_embs(&again, &EmbOptions::default()).expect("maps");
        let method = verify_rewrite(
            &emb.to_netlist(),
            &stg,
            OutputTiming::Registered,
            20,
            400,
            spec.seed ^ 3,
        )
        .unwrap_or_else(|e| panic!("{}: ladder failed: {e:?} ({spec:?})", stg.name()));
        assert!(
            matches!(
                method,
                romfsm::emb::verify::VerificationMethod::Exhaustive(_)
            ),
            "{spec:?}: expected the exhaustive rung for ≤4-input machines"
        );
    });
}

#[test]
fn generator_conforms_to_spec() {
    // Spec-conformance pins, as properties: same seed → byte-identical
    // machine (STG equality *and* on-disk KISS2 text), interface counts
    // respected, `max_support` honored, `moore` classification honored,
    // and `idle_line` semantics (a quiescent self-loop on column 0 in
    // every state, holding an all-zero output on Mealy machines).
    use romfsm::fsm::analysis::stats;
    use romfsm::fsm::pattern::Trit;

    run_cases(24, |rng| {
        let mut spec = arb_spec(rng);
        spec.max_support = Some(rng.random_range(1usize..4));
        let stg = generate(&spec).expect("arb specs are valid");
        let twin = generate(&spec).expect("arb specs are valid");
        assert_eq!(stg, twin, "{spec:?}: same seed must be byte-identical");
        assert_eq!(kiss2::write(&stg), kiss2::write(&twin), "{spec:?}");

        let st = stats(&stg);
        assert_eq!(st.states, spec.states, "{spec:?}");
        assert_eq!(st.inputs, spec.inputs, "{spec:?}");
        assert_eq!(st.outputs, spec.outputs, "{spec:?}");
        let budget = spec.max_support.unwrap();
        assert!(
            st.max_input_support <= budget,
            "{spec:?}: support {} over budget {budget}",
            st.max_input_support
        );
        if spec.moore {
            assert_eq!(
                machine::classify(&stg),
                machine::FsmKind::Moore,
                "{spec:?}"
            );
        }
        if spec.idle_line == Some(0) {
            for s in stg.states() {
                let idle: Vec<_> = stg
                    .transitions_from(s)
                    .filter(|t| matches!(t.input.trit(0), Trit::Zero) && t.to == s)
                    .collect();
                assert!(
                    !idle.is_empty(),
                    "{spec:?}: state {s:?} lacks a quiescent self-loop"
                );
                if !spec.moore {
                    for t in &idle {
                        assert!(
                            t.output.trits().iter().all(|o| !matches!(o, Trit::One)),
                            "{spec:?}: Mealy idle output must be all-zero"
                        );
                    }
                }
            }
        }
    });
}

#[test]
fn dont_care_density_only_ever_thins_machines() {
    // Don't-care density is a *widening* knob: for any spec, raising it
    // must never add transitions, and the fully-dense setting must leave
    // the machine unchanged from the knob's default.
    run_cases(24, |rng| {
        let spec = StgSpec {
            dont_care_density: 0.0,
            fanout_skew: 0.0,
            ..arb_spec(rng)
        };
        let dense = generate(&spec).expect("arb specs are valid");
        let mut last = dense.transitions().len();
        for density in [0.3, 0.7, 1.0] {
            let thinned = generate(&StgSpec {
                dont_care_density: density,
                ..spec.clone()
            })
            .expect("arb specs are valid");
            let t = thinned.transitions().len();
            assert!(
                t <= last,
                "{spec:?}: density {density} grew transitions {last} -> {t}"
            );
            last = t;
        }
    });
}

#[test]
fn degenerate_specs_error_instead_of_panicking() {
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        assert_eq!(
            generate(&StgSpec {
                states: 0,
                ..spec.clone()
            }),
            Err(GenerateError::NoStates)
        );
        let inputs = rng.random_range(21usize..64);
        assert_eq!(
            generate(&StgSpec {
                inputs,
                idle_line: None,
                ..spec.clone()
            }),
            Err(GenerateError::TooManyInputs { inputs })
        );
        assert_eq!(
            generate(&StgSpec {
                idle_line: Some(spec.inputs),
                ..spec.clone()
            }),
            Err(GenerateError::IdleLineOutOfRange {
                idle_line: spec.inputs,
                inputs: spec.inputs
            })
        );
    });
}

#[test]
fn minimization_preserves_behaviour() {
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        let min = minimize::minimize(&stg).expect("minimizes");
        assert!(min.stg.num_states() <= stg.num_states(), "{spec:?}");
        if let Err(e) = random_walk_equiv(&stg, &min.stg, 200, spec.seed) {
            panic!("{}: {e} ({spec:?})", stg.name());
        }
    });
}

#[test]
fn moore_transform_preserves_behaviour() {
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        let moore = machine::to_moore(&stg).expect("transforms");
        assert_eq!(
            machine::classify(&moore),
            machine::FsmKind::Moore,
            "{spec:?}"
        );
        if let Err(e) = random_walk_equiv(&stg, &moore, 200, spec.seed ^ 1) {
            panic!("{}: {e} ({spec:?})", stg.name());
        }
    });
}

#[test]
fn emb_mapping_is_cycle_exact() {
    // Sized harness: `size` bounds the machine's state count, so a failure
    // here shrinks by re-generating the same seed with fewer states.
    run_sized_cases(24, 10, |rng, size| {
        let spec = arb_spec_sized(rng, size);
        let stg = generate(&spec).expect("arb specs are valid");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let netlist = emb.to_netlist();
        let r = verify_against_stg(&netlist, &stg, OutputTiming::Registered, 200, spec.seed);
        assert!(r.is_ok(), "{}: {:?} ({spec:?})", stg.name(), r.err());
    });
}

#[test]
fn eco_placement_pins_base_and_bounds_delta_wirelength() {
    // The ECO placement contract, as a property over random machines:
    // every base coordinate is byte-identical to the plain placement, the
    // entity accounting closes, and the total wirelength never exceeds
    // the base wirelength plus the enable-cone delta (pinning means the
    // ECO pass cannot have perturbed any base-only net).
    use romfsm::emb::clock_control::attach_emb_clock_control;
    use romfsm::fpga::device::Device;
    use romfsm::fpga::pack::{pack, pack_partitioned};
    use romfsm::fpga::place::{place, place_incremental, PinnedEntities, PlaceOptions};
    use romfsm::logic::techmap::MapOptions;

    run_sized_cases(24, 10, |rng, size| {
        let spec = arb_spec_sized(rng, size);
        let stg = generate(&spec).expect("arb specs are valid");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let plain = emb.to_netlist();
        let (gated, _) = attach_emb_clock_control(&emb, MapOptions::default())
            .unwrap_or_else(|e| panic!("{}: clock control: {e} ({spec:?})", stg.name()));
        let device = Device::xc2v250();
        let opts = PlaceOptions {
            seed: spec.seed,
            effort: 1.0,
            ..PlaceOptions::default()
        };
        let plain_packed = pack(&plain);
        let base = place(&plain, &plain_packed, device, opts).expect("base placement");
        let packed = pack_partitioned(&gated, &plain_packed, plain.cells().len())
            .unwrap_or_else(|e| panic!("{}: partitioned pack: {e} ({spec:?})", stg.name()));
        let pins = PinnedEntities::pin_base(&base, &packed);
        let eco = place_incremental(&gated, &packed, device, opts, &pins)
            .unwrap_or_else(|e| panic!("{}: eco place: {e} ({spec:?})", stg.name()));
        let p = &eco.placement;
        assert_eq!(&p.clb_loc[..base.clb_loc.len()], &base.clb_loc[..], "{spec:?}");
        assert_eq!(&p.bram_loc[..base.bram_loc.len()], &base.bram_loc[..], "{spec:?}");
        assert_eq!(&p.iob_loc[..base.iob_loc.len()], &base.iob_loc[..], "{spec:?}");
        assert_eq!(
            eco.pinned_entities + eco.delta_entities,
            p.clb_loc.len() + p.bram_loc.len() + p.iob_loc.len(),
            "{spec:?}"
        );
        assert!(
            p.hpwl <= base.hpwl + eco.delta_hpwl + 1e-6,
            "total hpwl {} must stay within base {} + delta {} ({spec:?})",
            p.hpwl,
            base.hpwl,
            eco.delta_hpwl
        );
    });
}

#[test]
fn eco_identity_rewrite_changes_nothing() {
    run_cases(24, |rng| {
        let spec = arb_spec(rng);
        let stg = generate(&spec).expect("arb specs are valid");
        let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
        let eco = romfsm::emb::eco::rewrite(&emb, &stg).expect("identity rewrite");
        assert_eq!(eco.words_changed, 0, "{spec:?}");
    });
}

/// Permanent regression: the shrunk case the old proptest run recorded in
/// `prop_fsm.proptest-regressions` (now deleted). A 5-state Mealy machine
/// with a single input and a tiny transition budget — small enough that
/// the generator's spanning tree dominates and minimization/mapping see
/// degenerate-but-legal structure. The seed drives `fsm::generate`
/// directly, so the exact machine is reproduced by construction even
/// though the workspace PRNG changed from `rand` to `xrand`.
#[test]
fn regression_shrunk_5state_1in_1out_mealy() {
    let spec = StgSpec {
        name: "p4c737c691dc44479".into(),
        states: 5,
        inputs: 1,
        outputs: 1,
        transitions: 4,
        max_support: None,
        self_loop_bias: 0.3,
        moore: false,
        idle_line: None,
        dont_care_density: 0.0,
        fanout_skew: 0.0,
        seed: 5508883560117060729,
    };
    let stg = generate(&spec).expect("regression spec generates");
    assert!(stg.is_deterministic());
    assert_eq!(stg.num_states(), 5);

    // Run the full property gauntlet on this one machine.
    let text = kiss2::write(&stg);
    let again = kiss2::parse(&text, stg.name()).expect("roundtrip parses");
    random_walk_equiv(&stg, &again, 500, spec.seed ^ 2).expect("kiss2 roundtrip equivalent");

    let min = minimize::minimize(&stg).expect("minimizes");
    assert!(min.stg.num_states() <= stg.num_states());
    random_walk_equiv(&stg, &min.stg, 500, spec.seed).expect("minimization equivalent");

    let moore = machine::to_moore(&stg).expect("transforms");
    random_walk_equiv(&stg, &moore, 500, spec.seed ^ 1).expect("moore transform equivalent");

    let emb = map_fsm_into_embs(&stg, &EmbOptions::default()).expect("maps");
    let r = verify_against_stg(
        &emb.to_netlist(),
        &stg,
        OutputTiming::Registered,
        500,
        spec.seed,
    );
    assert!(r.is_ok(), "emb mapping not cycle-exact: {:?}", r.err());

    let eco = romfsm::emb::eco::rewrite(&emb, &stg).expect("identity rewrite");
    assert_eq!(eco.words_changed, 0);
}
