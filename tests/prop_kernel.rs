//! Property-based differential tests for the bit-parallel simulation
//! kernel: on randomly generated netlists (LUT DAGs, enabled FFs, BRAMs
//! with and without write ports), every lane of
//! [`romfsm::sim::kernel::BatchSimulator`] must agree with an independent
//! scalar [`romfsm::sim::engine::Simulator`] cycle for cycle — net
//! values, outputs, and every `Activity` counter — and the row/word
//! transposition layer must round-trip exactly.
//!
//! Runs on the in-workspace `xrand::proptest_lite` harness (hermetic, no
//! registry deps). Failures print the case seed; re-run one case with
//! `SEED=<seed> cargo test --test prop_kernel`.

use romfsm::fpga::device::BramShape;
use romfsm::fpga::netlist::{BramWrite, Cell, NetId, Netlist};
use romfsm::sim::engine::Simulator;
use romfsm::sim::kernel::{pack_rows, unpack_rows, BatchSimulator, LANES};
use xrand::proptest_lite::run_cases;
use xrand::SmallRng;

/// A random valid netlist: primary inputs feeding an acyclic LUT DAG,
/// optional enabled FFs, an optional BRAM (read-only or with a write
/// port), and an optional constant driver. Every structural feature the
/// kernel models shows up with fair probability.
fn arb_netlist(rng: &mut SmallRng) -> Netlist {
    let mut n = Netlist::new("prop");
    let num_inputs = rng.random_range(1usize..=4);
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..num_inputs {
        let net = n.add_net(format!("in{i}"));
        n.add_input(format!("in{i}"), net);
        pool.push(net);
    }
    // Sequential sources up front: FF q and BRAM dout nets may feed any
    // LUT (the loop through the state is what makes the machines
    // interesting), and they are legal before their cells exist.
    let num_ffs = rng.random_range(0usize..=3);
    let ff_q: Vec<NetId> = (0..num_ffs).map(|i| n.add_net(format!("q{i}"))).collect();
    pool.extend(&ff_q);
    let with_bram = rng.random_bool(0.6);
    let bram_dout: Vec<NetId> = if with_bram {
        let w = rng.random_range(1usize..=2);
        (0..w).map(|i| n.add_net(format!("bd{i}"))).collect()
    } else {
        Vec::new()
    };
    pool.extend(&bram_dout);
    if rng.random_bool(0.3) {
        let c = n.add_net("c0");
        n.add_cell(Cell::Const {
            output: c,
            value: rng.random(),
        });
        pool.push(c);
    }
    // Acyclic LUT DAG: inputs only from already-driven nets.
    let num_luts = rng.random_range(1usize..=8);
    for i in 0..num_luts {
        let k = rng.random_range(1usize..=3.min(pool.len()));
        let inputs: Vec<NetId> = (0..k)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let out = n.add_net(format!("l{i}"));
        let truth = rng.random_range(0..1u64 << (1 << k));
        n.add_cell(Cell::Lut {
            inputs,
            output: out,
            truth,
        });
        pool.push(out);
    }
    for &q in &ff_q {
        let d = pool[rng.random_range(0..pool.len())];
        let ce = rng
            .random_bool(0.5)
            .then(|| pool[rng.random_range(0..pool.len())]);
        n.add_cell(Cell::Ff {
            d,
            q,
            ce,
            init: rng.random(),
        });
    }
    if with_bram {
        let addr_bits = rng.random_range(2usize..=4);
        let depth = 1usize << addr_bits;
        let data_bits = bram_dout.len();
        let pick = |rng: &mut SmallRng, pool: &[NetId], count: usize| -> Vec<NetId> {
            (0..count)
                .map(|_| pool[rng.random_range(0..pool.len())])
                .collect()
        };
        let addr = pick(rng, &pool, addr_bits);
        let en = rng
            .random_bool(0.5)
            .then(|| pool[rng.random_range(0..pool.len())]);
        let init: Vec<u64> = (0..depth)
            .map(|_| rng.random_range(0..1u64 << data_bits))
            .collect();
        let write = rng.random_bool(0.4).then(|| BramWrite {
            addr: pick(rng, &pool, addr_bits),
            data: pick(rng, &pool, data_bits),
            we: pool[rng.random_range(0..pool.len())],
        });
        n.add_cell(Cell::Bram {
            shape: BramShape {
                addr_bits,
                data_bits,
            },
            addr,
            dout: bram_dout,
            en,
            init,
            output_init: rng.random_range(0..1u64 << data_bits),
            write,
        });
    }
    for i in 0..rng.random_range(1usize..=3) {
        n.add_output(format!("o{i}"), pool[rng.random_range(0..pool.len())]);
    }
    n
}

/// Random per-lane stimulus: `lanes` rows per cycle, one row per lane.
fn arb_stimulus(rng: &mut SmallRng, lanes: usize, cycles: usize, width: usize) -> Vec<Vec<Vec<bool>>> {
    (0..lanes)
        .map(|_| {
            (0..cycles)
                .map(|_| (0..width).map(|_| rng.random()).collect())
                .collect()
        })
        .collect()
}

/// Every lane of the kernel, driven by its own stimulus stream, matches
/// a scalar engine replaying that stream — every net value after every
/// clock, registered and pre-edge outputs alike — and the kernel's
/// aggregate `Activity` equals the per-lane scalar records summed.
#[test]
fn kernel_lanes_match_scalar_engines_cycle_for_cycle() {
    run_cases(32, |rng| {
        let netlist = arb_netlist(rng);
        let cycles = rng.random_range(3usize..=10);
        let width = netlist.inputs().len();
        let streams = arb_stimulus(rng, LANES, cycles, width);

        let mut batch = BatchSimulator::new(&netlist).expect("kernel accepts a valid netlist");
        let mut scalars: Vec<Simulator<'_>> = (0..LANES)
            .map(|_| Simulator::new(&netlist).expect("scalar engine accepts a valid netlist"))
            .collect();

        for cycle in 0..cycles {
            let rows: Vec<Vec<bool>> = (0..LANES).map(|l| streams[l][cycle].clone()).collect();
            batch.clock_words(&pack_rows(&rows, width));
            for (lane, scalar) in scalars.iter_mut().enumerate() {
                let outs = scalar.clock(&streams[lane][cycle]);
                assert_eq!(
                    outs,
                    batch.lane_outputs(lane),
                    "outputs diverged: lane {lane}, cycle {cycle}"
                );
                assert_eq!(
                    scalar.pre_edge_outputs(),
                    batch.lane_pre_edge_outputs(lane),
                    "pre-edge outputs diverged: lane {lane}, cycle {cycle}"
                );
                for i in 0..netlist.num_nets() {
                    let net = NetId(i as u32);
                    assert_eq!(
                        scalar.value(net),
                        batch.lane_value(net, lane),
                        "net {i} diverged: lane {lane}, cycle {cycle}"
                    );
                }
            }
        }

        // Aggregate activity: the kernel counts popcounts across all 64
        // active lanes, which must equal the 64 scalar records summed.
        let act = batch.activity();
        assert_eq!(act.cycles, (LANES * cycles) as u64, "cycle count");
        for i in 0..netlist.num_nets() {
            let summed: u64 = scalars.iter().map(|s| s.activity().toggles[i]).sum();
            assert_eq!(act.toggles[i], summed, "toggle count of net {i}");
        }
        for k in 0..act.bram_active_cycles.len() {
            let summed: u64 = scalars.iter().map(|s| s.activity().bram_active_cycles[k]).sum();
            assert_eq!(act.bram_active_cycles[k], summed, "bram_active_cycles[{k}]");
        }
        for k in 0..act.ff_active_cycles.len() {
            let summed: u64 = scalars.iter().map(|s| s.activity().ff_active_cycles[k]).sum();
            assert_eq!(act.ff_active_cycles[k], summed, "ff_active_cycles[{k}]");
        }
        for k in 0..act.bram_write_cycles.len() {
            let summed: u64 = scalars.iter().map(|s| s.activity().bram_write_cycles[k]).sum();
            assert_eq!(act.bram_write_cycles[k], summed, "bram_write_cycles[{k}]");
        }
    });
}

/// `run_sequential` (the power-flow path) is bit-identical to the scalar
/// engine's `run`: same values and the same `Activity` record, field for
/// field — toggles, cycles, BRAM enable/write counts, FF enable counts.
#[test]
fn run_sequential_matches_scalar_activity_exactly() {
    run_cases(32, |rng| {
        let netlist = arb_netlist(rng);
        let cycles = rng.random_range(5usize..=40);
        let width = netlist.inputs().len();
        let rows: Vec<Vec<bool>> = (0..cycles)
            .map(|_| (0..width).map(|_| rng.random()).collect())
            .collect();

        let mut batch = BatchSimulator::new(&netlist).expect("kernel accepts a valid netlist");
        batch.run_sequential(&rows);
        let mut scalar = Simulator::new(&netlist).expect("scalar engine accepts a valid netlist");
        scalar.run(rows.iter().cloned());

        for i in 0..netlist.num_nets() {
            let net = NetId(i as u32);
            assert_eq!(
                scalar.value(net),
                batch.lane_value(net, 0),
                "net {i} diverged after {cycles} cycles"
            );
        }
        let (a, b) = (scalar.activity(), batch.activity());
        assert_eq!(a.toggles, b.toggles, "toggles");
        assert_eq!(a.cycles, b.cycles, "cycles");
        assert_eq!(a.bram_active_cycles, b.bram_active_cycles, "bram enables");
        assert_eq!(a.ff_active_cycles, b.ff_active_cycles, "ff enables");
        assert_eq!(a.bram_write_cycles, b.bram_write_cycles, "bram writes");
    });
}

/// The transposition layer is lossless: packing up to 64 rows into lane
/// words and unpacking them back returns the original rows, and the
/// word image is exactly the transposed bit matrix.
#[test]
fn transposition_round_trips() {
    run_cases(64, |rng| {
        let count = rng.random_range(0usize..=LANES);
        let width = rng.random_range(0usize..=8);
        let rows: Vec<Vec<bool>> = (0..count)
            .map(|_| (0..width).map(|_| rng.random()).collect())
            .collect();
        let words = pack_rows(&rows, width);
        assert_eq!(words.len(), width, "one word per input position");
        for (k, word) in words.iter().enumerate() {
            for (lane, row) in rows.iter().enumerate() {
                assert_eq!(
                    word >> lane & 1 == 1,
                    row[k],
                    "bit (lane {lane}, position {k})"
                );
            }
            // Lanes beyond `count` are zero: packing never smears state.
            if count < LANES {
                assert_eq!(word >> count, 0, "word {k} has bits above lane {count}");
            }
        }
        assert_eq!(unpack_rows(&words, count), rows, "round trip");
    });
}
