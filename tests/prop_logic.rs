//! Property-based tests over the logic-synthesis substrate: cube algebra,
//! espresso exactness, decomposition and technology-mapping equivalence.

use proptest::prelude::*;
use romfsm::logic::cover::Cover;
use romfsm::logic::cube::Cube;
use romfsm::logic::decompose::decompose2;
use romfsm::logic::espresso;
use romfsm::logic::network::Network;
use romfsm::logic::techmap::{map_luts, MapOptions};

/// Strategy: a random cube over `n` variables encoded as (mask, val).
fn cube_strategy(n: usize) -> impl Strategy<Value = Cube> {
    let space: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    (0..=space, 0..=space).prop_map(move |(mask, val)| Cube::from_raw(n, mask, val & mask))
}

fn cover_strategy(n: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    prop::collection::vec(cube_strategy(n), 1..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(n, cubes))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    #[test]
    fn subtract_is_exact_difference(a in cube_strategy(6), b in cube_strategy(6)) {
        let diff = a.subtract(&b);
        for m in 0..64u64 {
            let expect = a.contains_minterm(m) && !b.contains_minterm(m);
            let got = diff.iter().any(|c| c.contains_minterm(m));
            prop_assert_eq!(got, expect, "minterm {:06b}", m);
        }
        // Pieces are pairwise disjoint.
        for i in 0..diff.len() {
            for j in (i + 1)..diff.len() {
                prop_assert!(!diff[i].intersects(&diff[j]));
            }
        }
    }

    #[test]
    fn supercube_contains_both(a in cube_strategy(8), b in cube_strategy(8)) {
        let s = a.supercube(&b);
        prop_assert!(s.contains(&a));
        prop_assert!(s.contains(&b));
    }

    #[test]
    fn intersection_agrees_with_pointwise(a in cube_strategy(6), b in cube_strategy(6)) {
        let i = a.intersection(&b);
        for m in 0..64u64 {
            let expect = a.contains_minterm(m) && b.contains_minterm(m);
            let got = i.map(|c| c.contains_minterm(m)).unwrap_or(false);
            prop_assert_eq!(got, expect);
        }
    }

    #[test]
    fn tautology_matches_brute_force(f in cover_strategy(6, 8)) {
        let brute = (0..64u64).all(|m| f.eval(m));
        prop_assert_eq!(f.is_tautology(), brute);
    }

    #[test]
    fn complement_is_pointwise_negation(f in cover_strategy(5, 6)) {
        let g = f.complement();
        for m in 0..32u64 {
            prop_assert_eq!(g.eval(m), !f.eval(m), "minterm {:05b}", m);
        }
    }

    #[test]
    fn espresso_is_exact_on_care_space(
        onset in cover_strategy(5, 6),
        dc in cover_strategy(5, 3),
    ) {
        let r = espresso::minimize(&onset, &dc);
        prop_assert!(espresso::is_exact_cover(&r.cover, &onset, &dc));
        for m in 0..32u64 {
            if !dc.eval(m) {
                prop_assert_eq!(r.cover.eval(m), onset.eval(m), "minterm {:05b}", m);
            }
        }
        prop_assert!(r.cover.len() <= onset.len() + 1);
    }

    #[test]
    fn decompose_and_map_preserve_function(f in cover_strategy(6, 6)) {
        let mut net = Network::new();
        let ins: Vec<_> = (0..6).map(|i| net.add_input(format!("i{i}"))).collect();
        let node = net.add_logic(ins, f).expect("arity matches");
        net.add_output("y", node).expect("node exists");
        let two = decompose2(&net);
        prop_assert!(two.max_fanin() <= 2);
        let mapped = map_luts(&two, MapOptions::default()).expect("maps");
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(net.eval(&bits), two.eval(&bits), "decompose @ {:06b}", m);
            prop_assert_eq!(net.eval(&bits), mapped.eval(&bits), "map @ {:06b}", m);
        }
        for lut in &mapped.luts {
            prop_assert!(lut.fanins.len() <= 4);
        }
    }
}

/// Cross-substrate property: a LUT network instantiated into a physical
/// netlist and run on the cycle simulator must agree with direct
/// evaluation of the LUT network.
mod netlist_cross_check {
    use super::*;
    use romfsm::emb::netlist_build::instantiate_luts;
    use romfsm::fpga::netlist::{NetId, Netlist};
    use romfsm::sim::engine::Simulator;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

        #[test]
        fn simulator_matches_lut_network_eval(f in cover_strategy(5, 5)) {
            let mut net = Network::new();
            let ins: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
            let node = net.add_logic(ins, f).expect("arity matches");
            net.add_output("y", node).expect("node exists");
            let luts = map_luts(&decompose2(&net), MapOptions::default()).expect("maps");

            let mut n = Netlist::new("x");
            let pins: Vec<NetId> = (0..5).map(|i| n.add_net(format!("p{i}"))).collect();
            for (i, p) in pins.iter().enumerate() {
                n.add_input(format!("p{i}"), *p);
            }
            let outs = instantiate_luts(&mut n, &luts, &pins, "u");
            n.add_output("y", outs[0]);
            let mut sim = Simulator::new(&n).expect("valid netlist");
            for m in 0..32u64 {
                let bits: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
                sim.clock(&bits);
                prop_assert_eq!(sim.outputs()[0], luts.eval(&bits)[0], "m={:05b}", m);
            }
        }
    }
}
