//! Property-based tests over the logic-synthesis substrate: cube algebra,
//! espresso exactness, decomposition and technology-mapping equivalence.
//!
//! Runs on the in-workspace `xrand::proptest_lite` harness (hermetic, no
//! registry deps). Failures print the case seed; re-run one case with
//! `SEED=<seed> cargo test --test prop_logic`.

use romfsm::logic::cover::Cover;
use romfsm::logic::cube::Cube;
use romfsm::logic::decompose::decompose2;
use romfsm::logic::espresso;
use romfsm::logic::network::Network;
use romfsm::logic::techmap::{map_luts, MapOptions};
use xrand::proptest_lite::run_cases;
use xrand::SmallRng;

/// A random cube over `n` variables encoded as (mask, val).
fn arb_cube(rng: &mut SmallRng, n: usize) -> Cube {
    let space: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mask = rng.random_range(0..=space);
    let val = rng.random_range(0..=space);
    Cube::from_raw(n, mask, val & mask)
}

fn arb_cover(rng: &mut SmallRng, n: usize, max_cubes: usize) -> Cover {
    let count = rng.random_range(1usize..=max_cubes);
    Cover::from_cubes(n, (0..count).map(|_| arb_cube(rng, n)).collect())
}

#[test]
fn subtract_is_exact_difference() {
    run_cases(64, |rng| {
        let a = arb_cube(rng, 6);
        let b = arb_cube(rng, 6);
        let diff = a.subtract(&b);
        for m in 0..64u64 {
            let expect = a.contains_minterm(m) && !b.contains_minterm(m);
            let got = diff.iter().any(|c| c.contains_minterm(m));
            assert_eq!(got, expect, "minterm {m:06b} of {a:?} - {b:?}");
        }
        // Pieces are pairwise disjoint.
        for i in 0..diff.len() {
            for j in (i + 1)..diff.len() {
                assert!(!diff[i].intersects(&diff[j]));
            }
        }
    });
}

#[test]
fn supercube_contains_both() {
    run_cases(64, |rng| {
        let a = arb_cube(rng, 8);
        let b = arb_cube(rng, 8);
        let s = a.supercube(&b);
        assert!(s.contains(&a));
        assert!(s.contains(&b));
    });
}

#[test]
fn intersection_agrees_with_pointwise() {
    run_cases(64, |rng| {
        let a = arb_cube(rng, 6);
        let b = arb_cube(rng, 6);
        let i = a.intersection(&b);
        for m in 0..64u64 {
            let expect = a.contains_minterm(m) && b.contains_minterm(m);
            let got = i.map(|c| c.contains_minterm(m)).unwrap_or(false);
            assert_eq!(got, expect, "minterm {m:06b}");
        }
    });
}

#[test]
fn tautology_matches_brute_force() {
    run_cases(64, |rng| {
        let f = arb_cover(rng, 6, 8);
        let brute = (0..64u64).all(|m| f.eval(m));
        assert_eq!(f.is_tautology(), brute, "{f:?}");
    });
}

#[test]
fn complement_is_pointwise_negation() {
    run_cases(64, |rng| {
        let f = arb_cover(rng, 5, 6);
        let g = f.complement();
        for m in 0..32u64 {
            assert_eq!(g.eval(m), !f.eval(m), "minterm {m:05b} of {f:?}");
        }
    });
}

#[test]
fn espresso_is_exact_on_care_space() {
    run_cases(64, |rng| {
        let onset = arb_cover(rng, 5, 6);
        let dc = arb_cover(rng, 5, 3);
        let r = espresso::minimize(&onset, &dc);
        assert!(espresso::is_exact_cover(&r.cover, &onset, &dc));
        for m in 0..32u64 {
            if !dc.eval(m) {
                assert_eq!(r.cover.eval(m), onset.eval(m), "minterm {m:05b}");
            }
        }
        assert!(r.cover.len() <= onset.len() + 1);
    });
}

#[test]
fn decompose_and_map_preserve_function() {
    run_cases(64, |rng| {
        let f = arb_cover(rng, 6, 6);
        let mut net = Network::new();
        let ins: Vec<_> = (0..6).map(|i| net.add_input(format!("i{i}"))).collect();
        let node = net.add_logic(ins, f).expect("arity matches");
        net.add_output("y", node).expect("node exists");
        let two = decompose2(&net);
        assert!(two.max_fanin() <= 2);
        let mapped = map_luts(&two, MapOptions::default()).expect("maps");
        for m in 0..64u64 {
            let bits: Vec<bool> = (0..6).map(|i| m >> i & 1 == 1).collect();
            assert_eq!(net.eval(&bits), two.eval(&bits), "decompose @ {m:06b}");
            assert_eq!(net.eval(&bits), mapped.eval(&bits), "map @ {m:06b}");
        }
        for lut in &mapped.luts {
            assert!(lut.fanins.len() <= 4);
        }
    });
}

/// Cross-substrate property: a LUT network instantiated into a physical
/// netlist and run on the cycle simulator must agree with direct
/// evaluation of the LUT network.
mod netlist_cross_check {
    use super::*;
    use romfsm::emb::netlist_build::instantiate_luts;
    use romfsm::fpga::netlist::{NetId, Netlist};
    use romfsm::sim::engine::Simulator;

    #[test]
    fn simulator_matches_lut_network_eval() {
        run_cases(32, |rng| {
            let f = arb_cover(rng, 5, 5);
            let mut net = Network::new();
            let ins: Vec<_> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
            let node = net.add_logic(ins, f).expect("arity matches");
            net.add_output("y", node).expect("node exists");
            let luts = map_luts(&decompose2(&net), MapOptions::default()).expect("maps");

            let mut n = Netlist::new("x");
            let pins: Vec<NetId> = (0..5).map(|i| n.add_net(format!("p{i}"))).collect();
            for (i, p) in pins.iter().enumerate() {
                n.add_input(format!("p{i}"), *p);
            }
            let outs = instantiate_luts(&mut n, &luts, &pins, "u");
            n.add_output("y", outs[0]);
            let mut sim = Simulator::new(&n).expect("valid netlist");
            for m in 0..32u64 {
                let bits: Vec<bool> = (0..5).map(|i| m >> i & 1 == 1).collect();
                sim.clock(&bits);
                assert_eq!(sim.outputs()[0], luts.eval(&bits)[0], "m={m:05b}");
            }
        });
    }
}
