//! Property-based differential tests for the incremental static-timing
//! kernel: on randomly generated netlists (LUT DAGs, enabled FFs, BRAMs
//! with and without write ports), an arbitrary seeded sequence of wire-
//! delay edits applied incrementally must leave
//! [`romfsm::fpga::sta::TimingKernel`] bit-identical — arrival,
//! downstream/required, slack, criticality, and the critical path — to a
//! from-scratch kernel fed the same final delays, and to its own
//! `full_retime` recompute.
//!
//! Runs on the in-workspace `xrand::proptest_lite` harness (hermetic, no
//! registry deps). Failures print the case seed; re-run one case with
//! `SEED=<seed> cargo test --test prop_timing`.

use romfsm::fpga::device::BramShape;
use romfsm::fpga::netlist::{BramWrite, Cell, NetId, Netlist};
use romfsm::fpga::sta::TimingKernel;
use romfsm::fpga::timing::DelayModel;
use xrand::proptest_lite::run_cases;
use xrand::SmallRng;

/// A random valid netlist: primary inputs feeding an acyclic LUT DAG,
/// optional enabled FFs, an optional BRAM (read-only or with a write
/// port), and an optional constant driver — every launch and endpoint
/// kind the timing model distinguishes shows up with fair probability.
fn arb_netlist(rng: &mut SmallRng) -> Netlist {
    let mut n = Netlist::new("prop");
    let num_inputs = rng.random_range(1usize..=4);
    let mut pool: Vec<NetId> = Vec::new();
    for i in 0..num_inputs {
        let net = n.add_net(format!("in{i}"));
        n.add_input(format!("in{i}"), net);
        pool.push(net);
    }
    // Sequential sources up front: FF q and BRAM dout nets may feed any
    // LUT, and they are legal before their cells exist.
    let num_ffs = rng.random_range(0usize..=3);
    let ff_q: Vec<NetId> = (0..num_ffs).map(|i| n.add_net(format!("q{i}"))).collect();
    pool.extend(&ff_q);
    let with_bram = rng.random_bool(0.6);
    let bram_dout: Vec<NetId> = if with_bram {
        let w = rng.random_range(1usize..=2);
        (0..w).map(|i| n.add_net(format!("bd{i}"))).collect()
    } else {
        Vec::new()
    };
    pool.extend(&bram_dout);
    if rng.random_bool(0.3) {
        let c = n.add_net("c0");
        n.add_cell(Cell::Const {
            output: c,
            value: rng.random(),
        });
        pool.push(c);
    }
    // Acyclic LUT DAG: inputs only from already-driven nets.
    let num_luts = rng.random_range(1usize..=8);
    for i in 0..num_luts {
        let k = rng.random_range(1usize..=3.min(pool.len()));
        let inputs: Vec<NetId> = (0..k)
            .map(|_| pool[rng.random_range(0..pool.len())])
            .collect();
        let out = n.add_net(format!("l{i}"));
        let truth = rng.random_range(0..1u64 << (1 << k));
        n.add_cell(Cell::Lut {
            inputs,
            output: out,
            truth,
        });
        pool.push(out);
    }
    for &q in &ff_q {
        let d = pool[rng.random_range(0..pool.len())];
        let ce = rng
            .random_bool(0.5)
            .then(|| pool[rng.random_range(0..pool.len())]);
        n.add_cell(Cell::Ff {
            d,
            q,
            ce,
            init: rng.random(),
        });
    }
    if with_bram {
        let addr_bits = rng.random_range(2usize..=4);
        let depth = 1usize << addr_bits;
        let data_bits = bram_dout.len();
        let pick = |rng: &mut SmallRng, pool: &[NetId], count: usize| -> Vec<NetId> {
            (0..count)
                .map(|_| pool[rng.random_range(0..pool.len())])
                .collect()
        };
        let addr = pick(rng, &pool, addr_bits);
        let en = rng
            .random_bool(0.5)
            .then(|| pool[rng.random_range(0..pool.len())]);
        let init: Vec<u64> = (0..depth)
            .map(|_| rng.random_range(0..1u64 << data_bits))
            .collect();
        let write = rng.random_bool(0.4).then(|| BramWrite {
            addr: pick(rng, &pool, addr_bits),
            data: pick(rng, &pool, data_bits),
            we: pool[rng.random_range(0..pool.len())],
        });
        n.add_cell(Cell::Bram {
            shape: BramShape {
                addr_bits,
                data_bits,
            },
            addr,
            dout: bram_dout,
            en,
            init,
            output_init: rng.random_range(0..1u64 << data_bits),
            write,
        });
    }
    for i in 0..rng.random_range(1usize..=3) {
        n.add_output(format!("o{i}"), pool[rng.random_range(0..pool.len())]);
    }
    n
}

/// Asserts two kernels agree bit-for-bit on every per-net quantity and
/// on the critical path.
fn assert_bit_identical(a: &TimingKernel, b: &TimingKernel, ctx: &str) {
    assert_eq!(
        a.critical_ns().to_bits(),
        b.critical_ns().to_bits(),
        "critical path diverged: {ctx}"
    );
    for i in 0..a.num_nets() {
        let net = NetId(i as u32);
        assert_eq!(
            a.arrival(net).to_bits(),
            b.arrival(net).to_bits(),
            "arrival of net {i} diverged: {ctx}"
        );
        assert_eq!(
            a.downstream(net).to_bits(),
            b.downstream(net).to_bits(),
            "downstream of net {i} diverged: {ctx}"
        );
        assert_eq!(
            a.slack(net).to_bits(),
            b.slack(net).to_bits(),
            "slack of net {i} diverged: {ctx}"
        );
        assert_eq!(
            a.criticality(net).to_bits(),
            b.criticality(net).to_bits(),
            "criticality of net {i} diverged: {ctx}"
        );
    }
}

/// After an arbitrary seeded move sequence (batched wire-delay edits,
/// interleaved flushes), the incrementally-maintained kernel equals a
/// from-scratch kernel given the same final delays, bit for bit — and
/// `full_retime` confirms zero drift from inside.
#[test]
fn incremental_timing_equals_from_scratch_recompute() {
    run_cases(48, |rng| {
        let netlist = arb_netlist(rng);
        let model = DelayModel::default();
        let mut kernel = TimingKernel::new(&netlist, &model).expect("valid netlist");
        kernel.flush();
        let nets = kernel.num_nets();
        let moves = rng.random_range(1usize..=60);
        for _ in 0..moves {
            // One "placer move": a small batch of nets changes length.
            for _ in 0..rng.random_range(1usize..=4) {
                let net = NetId(rng.random_range(0..nets) as u32);
                let hops = rng.random_range(0u32..40);
                kernel.set_wire_delay(net, model.net_base + model.net_per_hop * f64::from(hops));
            }
            if rng.random_bool(0.7) {
                kernel.flush();
            }
        }
        kernel.flush();

        // From-scratch witness: a fresh kernel fed the same final wire
        // delays in one pass.
        let mut fresh = TimingKernel::new(&netlist, &model).expect("valid netlist");
        for i in 0..nets {
            let net = NetId(i as u32);
            fresh.set_wire_delay(net, kernel.wire_delay(net));
        }
        fresh.flush();
        assert_bit_identical(&kernel, &fresh, "incremental vs from-scratch");

        // The committed invariant: a full retime of the incremental
        // kernel must find nothing to change.
        assert!(
            kernel.clone().full_retime(),
            "full_retime found drift after {moves} moves"
        );
    });
}

/// Criticality and slack stay coherent under the same random campaigns:
/// criticality is within [0, 1], the worst net is exactly critical, and
/// zero-slack nets are the criticality-1 nets.
#[test]
fn criticality_and_slack_stay_coherent_under_edits() {
    run_cases(24, |rng| {
        let netlist = arb_netlist(rng);
        let model = DelayModel::default();
        let mut kernel = TimingKernel::new(&netlist, &model).expect("valid netlist");
        for _ in 0..rng.random_range(1usize..=30) {
            let net = NetId(rng.random_range(0..kernel.num_nets()) as u32);
            let hops = rng.random_range(0u32..40);
            kernel.set_wire_delay(net, model.net_base + model.net_per_hop * f64::from(hops));
        }
        kernel.flush();
        let mut saw_critical = false;
        for i in 0..kernel.num_nets() {
            let net = NetId(i as u32);
            let c = kernel.criticality(net);
            assert!((0.0..=1.0).contains(&c), "criticality out of range: {c}");
            if (c - 1.0).abs() < 1e-15 {
                saw_critical = true;
                assert!(
                    kernel.slack(net).abs() < 1e-9,
                    "critical net {i} has slack {}",
                    kernel.slack(net)
                );
            }
        }
        if kernel.critical_ns() > f64::MIN_POSITIVE {
            assert!(saw_critical, "some net must carry the critical path");
        }
    });
}
